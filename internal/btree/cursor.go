package btree

import (
	"onlineindex/internal/buffer"
	"onlineindex/internal/latch"
	"onlineindex/internal/types"
)

// Cursor defaults; NewCursor callers can lower them (tests force refills).
const (
	// cursorBatchEntries is the refill target: how many entries one latched
	// traversal copies out before the cursor lets go of the tree.
	cursorBatchEntries = 256
	// cursorBatchLeaves caps how many leaves one refill crabs across, so a
	// refill over sparse (heavily pseudo-deleted) regions still bounds its
	// latch-hold window.
	cursorBatchLeaves = 8
)

// Cursor is a forward range scan with bounded latch holds. Unlike ScanRange,
// which pins the tree latch in share mode for the whole scan (blocking every
// split until the callback chain finishes), a Cursor works in batches: each
// refill takes the tree latch shared, descends to its resume position,
// latch-crabs across up to a few leaves copying entries out, and releases
// everything before handing entries to the caller. Between refills the tree
// is completely unlatched, so structure modifications proceed.
//
// Splits between refills are harmless: the cursor resumes by re-descending
// for the first entry strictly greater than the last one it returned, and
// leaf key ranges only change under the exclusive tree latch, which the
// refill's share hold excludes. The cursor therefore returns every entry
// that existed (at its key position) for the whole scan, each exactly once,
// in (key, RID) order; entries inserted behind the scan position are not
// revisited and entries removed ahead of it (GC) are not returned — the
// usual cursor-stability contract. Pseudo-deleted entries are returned with
// Entry.Pseudo set; visibility is the caller's business (the engine runs the
// lock protocol over them).
type Cursor struct {
	t  *Tree
	hi []byte // inclusive upper key bound; nil = unbounded

	batch []Entry
	pos   int

	// resume is the last entry handed out (exclusive restart position);
	// before the first refill it is the inclusive lower bound.
	resumeKey []byte
	resumeRID types.RID
	exclusive bool

	// resumePage, when not NoPage, short-circuits the next refill's descent:
	// the previous refill hit the leaf cap inside a run of entry-less leaves
	// and recorded the right sibling it was about to visit. Resuming at the
	// page (instead of by key) is what lets the crawl release the tree latch
	// without losing its place — empty leaves have no key to descend to.
	resumePage types.PageNum

	maxEntries int
	maxLeaves  int
	done       bool
}

// NewCursor positions a cursor at the first entry >= (lo, RID zero); nil lo
// starts at the tree's smallest entry. Entries with key value <= hi are
// returned (nil hi scans to the end) — like ScanRange, the bound is on the
// key value, so every RID of the hi key is included.
func (t *Tree) NewCursor(lo, hi []byte) *Cursor {
	return &Cursor{
		t: t, hi: hi,
		resumeKey:  append([]byte(nil), lo...),
		resumePage: NoPage,
		maxEntries: cursorBatchEntries,
		maxLeaves:  cursorBatchLeaves,
	}
}

// SetBatch overrides the refill batch limits (tests use tiny batches to
// force many resume descents). Zero values keep the defaults.
func (c *Cursor) SetBatch(entries, leaves int) {
	if entries > 0 {
		c.maxEntries = entries
	}
	if leaves > 0 {
		c.maxLeaves = leaves
	}
}

// Next returns the next entry in (key, RID) order. ok=false means the scan
// is exhausted (or past hi). A refill may legitimately come back empty
// without ending the scan (a leaf-capped crawl through an entry-less
// region), so Next keeps refilling until entries arrive or the scan is done;
// each iteration re-latches from scratch, so the tree is unlatched between
// steps.
func (c *Cursor) Next() (Entry, bool, error) {
	for c.pos >= len(c.batch) {
		if c.done {
			return Entry{}, false, nil
		}
		if err := c.refill(); err != nil {
			return Entry{}, false, err
		}
	}
	e := c.batch[c.pos]
	c.pos++
	return e, true, nil
}

// refill latches the tree shared, descends to the resume position and crabs
// forward copying entries until a batch limit or the hi bound is reached.
func (c *Cursor) refill() error {
	c.batch = c.batch[:0]
	c.pos = 0

	c.t.mu.RLock()
	defer c.t.mu.RUnlock()
	c.t.Stats.ScanResumes.Add(1)
	c.t.met.ScanResumes.Add(1)

	var (
		f   *buffer.Frame
		n   *Node
		err error
	)
	if c.resumePage != NoPage {
		// Resume a leaf-capped crawl directly at the remembered leaf. This is
		// sound across the unlatched gap: leaf pages are never freed or
		// merged (only split, which keeps the left page and moves the upper
		// part of its range to a new page), so the remembered page is still a
		// leaf at the same chain position and every entry it can hold is
		// strictly beyond the last entry returned. searchLeaf below still
		// applies the (resumeKey, resumeRID) bound, so nothing can repeat.
		f, n, err = c.t.fetchLatched(c.resumePage, latch.S)
	} else {
		f, n, err = c.t.descend(c.resumeKey, c.resumeRID, latch.S)
	}
	if err != nil {
		return err
	}
	i, exact := n.searchLeaf(c.resumeKey, c.resumeRID)
	if exact && c.exclusive {
		// The resume entry itself was already returned; if it has been
		// physically removed since, searchLeaf already points past it.
		i++
	}
	leaves := 1
	for {
		c.t.Stats.ScanLeaves.Add(1)
		c.t.met.ScanLeaves.Add(1)
		for ; i < len(n.entries); i++ {
			e := n.entries[i]
			if c.hi != nil && CompareEntry(e.Key, types.RID{}, c.hi, types.MaxRID) > 0 {
				c.t.release(f, latch.S)
				c.done = true
				return nil
			}
			c.batch = append(c.batch, Entry{Key: append([]byte(nil), e.Key...), RID: e.RID, Pseudo: e.Pseudo})
			if len(c.batch) >= c.maxEntries {
				i++
				break
			}
		}
		if i < len(n.entries) || len(c.batch) >= c.maxEntries {
			break
		}
		if leaves >= c.maxLeaves {
			if len(c.batch) > 0 {
				break
			}
			// Leaf cap hit with nothing collected — a run of entry-less
			// leaves (e.g. a heavily GC'd region). Ending the scan here
			// would be wrong, and crabbing on would hold the tree share
			// latch for an unbounded stretch; instead remember the right
			// sibling as a direct resume point and let go. Next's refill
			// loop continues the crawl with the tree unlatched in between.
			next := n.next
			c.t.release(f, latch.S)
			if next == NoPage {
				c.done = true
			} else {
				c.resumePage = next
			}
			return nil
		}
		next := n.next
		if next == NoPage {
			c.t.release(f, latch.S)
			c.done = true
			return nil
		}
		// Latch-couple to the right sibling: acquire the next leaf's S latch
		// before releasing the current one (left→right, the tree's latch
		// order), so the chain cannot change underfoot mid-step.
		nf, nn, err := c.t.fetchLatched(next, latch.S)
		if err != nil {
			c.t.release(f, latch.S)
			return err
		}
		c.t.release(f, latch.S)
		f, n = nf, nn
		i = 0
		leaves++
	}
	c.t.release(f, latch.S)
	if len(c.batch) == 0 {
		c.done = true
		return nil
	}
	last := c.batch[len(c.batch)-1]
	c.resumeKey = append(c.resumeKey[:0], last.Key...)
	c.resumeRID = last.RID
	c.exclusive = true
	c.resumePage = NoPage // a key resume position supersedes a page one
	return nil
}
