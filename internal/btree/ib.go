package btree

import (
	"fmt"

	"onlineindex/internal/buffer"
	"onlineindex/internal/latch"
	"onlineindex/internal/rm"
	"onlineindex/internal/types"
	"onlineindex/internal/wal"
)

// IBCursor remembers the leaf the index builder last inserted into, "as in
// ARIES/IM ... by remembering the path from the root to the leaf and
// exploiting that information during a subsequent call" (§2.2.3). Because IB
// feeds keys in ascending order, the remembered leaf is almost always right;
// validation is purely local (the key must fall inside the leaf's occupied
// range, or beyond it on the rightmost leaf), falling back to a full descent
// otherwise.
type IBCursor struct {
	leaf  types.PageNum
	valid bool
}

// Invalidate drops the remembered position.
func (c *IBCursor) Invalidate() { c.valid = false }

// IBInsertResult reports one IB batch call's effects.
type IBInsertResult struct {
	Inserted int // entries actually added
	Skipped  int // entries rejected as already present (any state)
}

// IBInsertBatch inserts the (ascending, deduplicated) entries under the NSF
// index builder rules (§2.2.3):
//
//   - an entry identical to one already in the index — live or
//     pseudo-deleted — is skipped without logging ("if IB's insert is
//     rejected because of duplication, then no log record is written by IB");
//   - inserted entries are logged in multi-key TypeIdxMultiInsert records,
//     one per touched leaf per call;
//   - splits triggered by IB use the specialised cut-at-insert-position
//     split;
//   - for a unique index, an existing entry with the same key value but a
//     different RID stops the batch: the caller must run the §2.2.3
//     commit-verification protocol on both records before deciding whether
//     the build fails. The conflict's index within ents is returned.
//
// The batch must be sorted ascending by (key, RID); IB's sorted stream
// guarantees that.
func (t *Tree) IBInsertBatch(tl rm.TxnLogger, ents []Entry, cur *IBCursor) (IBInsertResult, *UniqueConflict, int, error) {
	var res IBInsertResult
	i := 0
	for i < len(ents) {
		n, conflict, err := t.ibInsertSome(tl, ents[i:], cur, &res)
		if err != nil {
			return res, nil, 0, err
		}
		if conflict != nil {
			return res, conflict, i + n, nil
		}
		i += n
	}
	return res, nil, 0, nil
}

// ibInsertSome inserts a prefix of ents into one leaf (one latch window, one
// log record) and returns how many entries were consumed. A returned
// UniqueConflict consumed `n` entries before stopping at ents[n].
func (t *Tree) ibInsertSome(tl rm.TxnLogger, ents []Entry, cur *IBCursor, res *IBInsertResult) (int, *UniqueConflict, error) {
	if t.unique {
		// Unique trees serialize inserts; see tryInsertUnique.
		n, conflict, err := t.ibInsertUniqueOne(tl, ents[0], res)
		return n, conflict, err
	}

	for attempt := 0; ; attempt++ {
		if attempt > 64 {
			return 0, nil, fmt.Errorf("btree: IB insert retry livelock")
		}
		n, needSplit, err := t.ibTryLeafBatch(tl, ents, cur, res)
		if err != nil {
			return 0, nil, err
		}
		if !needSplit {
			return n, nil, nil
		}
		if n > 0 {
			return n, nil, nil // made progress; next call resumes
		}
		if err := t.makeRoom(tl, ents[0].Key, ents[0].RID, true); err != nil {
			return 0, nil, err
		}
		cur.Invalidate()
	}
}

// ibTryLeafBatch locates the leaf for ents[0] (via the cursor when possible)
// and inserts as many consecutive entries as belong to that leaf and fit.
func (t *Tree) ibTryLeafBatch(tl rm.TxnLogger, ents []Entry, cur *IBCursor, res *IBInsertResult) (consumed int, needSplit bool, err error) {
	t.mu.RLock()
	defer t.mu.RUnlock()

	first := ents[0]
	var leafF *frameNodePair
	if cur.valid {
		f, n, err := t.fetchLatched(cur.leaf, latch.X)
		if err != nil {
			return 0, false, err
		}
		if t.cursorValidFor(n, first.Key, first.RID) {
			t.Stats.FastPathHits.Add(1)
			leafF = &frameNodePair{f, n}
		} else {
			t.release(f, latch.X)
			cur.valid = false
		}
	}
	if leafF == nil {
		f, n, err := t.descend(first.Key, first.RID, latch.X)
		if err != nil {
			return 0, false, err
		}
		leafF = &frameNodePair{f, n}
	}
	f, n := leafF.f, leafF.n
	defer t.release(f, latch.X)

	var batch []Entry
	for bi, e := range ents {
		i, exact := n.searchLeaf(e.Key, e.RID)
		if exact {
			res.Skipped++
			t.Stats.IBSkips.Add(1)
			consumed++
			continue
		}
		if bi > 0 && i == len(n.entries) && n.next != NoPage {
			// A later batch entry past the leaf's occupied range may belong
			// to a successor leaf: stop this window and re-descend for it.
			// (The FIRST entry is exempt: the descent/cursor validation
			// located this leaf for it, so an at-the-end position is simply
			// an insert into the leaf's range gap.)
			break
		}
		if !n.hasRoomEntry(e.Key, t.budget) {
			needSplit = true
			break
		}
		n.insertEntryAt(i, Entry{Key: e.Key, RID: e.RID})
		batch = append(batch, Entry{Key: e.Key, RID: e.RID})
		res.Inserted++
		t.Stats.Inserts.Add(1)
		t.met.Inserts.Inc()
		consumed++
	}
	if len(batch) > 0 {
		pl := MultiInsertPayload{Entries: batch}
		lsn, err := tl.Log(&wal.Record{
			Type: wal.TypeIdxMultiInsert, Flags: wal.FlagRedo | wal.FlagUndo,
			PageID: f.ID, Payload: pl.Encode(),
		})
		if err != nil {
			return consumed, false, err
		}
		f.MarkDirty(lsn)
		cur.leaf, cur.valid = f.ID.Page, true
	}
	return consumed, needSplit, nil
}

type frameNodePair struct {
	f *buffer.Frame
	n *Node
}

// cursorValidFor reports whether the remembered leaf is provably correct for
// (key, rid): the key falls within the leaf's occupied entry range, or past
// its end when the leaf is rightmost. (A key past the end of a non-rightmost
// leaf might belong to a successor, so the fast path declines.)
func (t *Tree) cursorValidFor(n *Node, key []byte, rid types.RID) bool {
	if !n.leaf || len(n.entries) == 0 {
		return false
	}
	first, last := n.entries[0], n.entries[len(n.entries)-1]
	if CompareEntry(key, rid, first.Key, first.RID) < 0 {
		return false
	}
	if CompareEntry(key, rid, last.Key, last.RID) <= 0 {
		return true
	}
	return n.next == NoPage
}

// ibInsertUniqueOne inserts a single entry under the unique rules. Unlike a
// transaction insert, an exact duplicate (either state) is skipped silently,
// and any same-key-value entry under a different RID is a conflict for the
// caller to verify — including a pseudo-deleted one, because IB must check
// that both records involved are committed (§2.2.3).
func (t *Tree) ibInsertUniqueOne(tl rm.TxnLogger, e Entry, res *IBInsertResult) (int, *UniqueConflict, error) {
	for attempt := 0; ; attempt++ {
		if attempt > 64 {
			return 0, nil, fmt.Errorf("btree: IB unique insert retry livelock")
		}
		r, conflict, needSplit, err := t.tryInsert(tl, e.Key, e.RID, false, true)
		if err != nil {
			return 0, nil, err
		}
		if conflict != nil {
			return 0, conflict, nil
		}
		if needSplit {
			if err := t.makeRoom(tl, e.Key, e.RID, true); err != nil {
				return 0, nil, err
			}
			continue
		}
		if r == Inserted {
			res.Inserted++
		} else {
			res.Skipped++
		}
		return 1, nil, nil
	}
}

// GCResult summarizes a garbage-collection pass (§2.2.4).
type GCResult struct {
	Scanned   int // leaf pages visited
	Examined  int // pseudo-deleted entries seen
	Collected int // entries physically removed
	Skipped   int // entries whose delete was possibly uncommitted
}

// GC physically removes committed pseudo-deleted keys, following §2.2.4:
// "Scan the leaf pages. For each page, latch the page and check if there are
// any pseudo-deleted keys. If there are, then apply the Commit_LSN check. If
// it is successful, then garbage collect those keys; otherwise, for each
// pseudo-deleted key, request a conditional instant share lock on it. If the
// lock is granted, then delete the key; otherwise, skip it since the key's
// deletion is probably uncommitted."
//
// pageCommitted receives the page's LSN and implements the Commit_LSN check
// (may be nil to always fall through to per-key checks); keyCommitted
// implements the conditional instant lock (must not block).
func (t *Tree) GC(tl rm.TxnLogger, pageCommitted func(types.LSN) bool, keyCommitted func(key []byte, rid types.RID) bool) (GCResult, error) {
	var res GCResult
	t.mu.RLock()
	defer t.mu.RUnlock()

	f, n, err := t.descend(nil, types.RID{}, latch.X)
	if err != nil {
		return res, err
	}
	for {
		res.Scanned++
		wholePage := pageCommitted != nil && pageCommitted(n.PageLSN())
		for i := 0; i < len(n.entries); {
			e := n.entries[i]
			if !e.Pseudo {
				i++
				continue
			}
			res.Examined++
			if !wholePage && (keyCommitted == nil || !keyCommitted(e.Key, e.RID)) {
				res.Skipped++
				i++
				continue
			}
			pl := EntryPayload{Key: e.Key, RID: e.RID, Pseudo: true}
			lsn, err := tl.Log(&wal.Record{
				Type: wal.TypeIdxDelete, Flags: wal.FlagRedo | wal.FlagUndo,
				PageID: f.ID, Payload: pl.Encode(),
			})
			if err != nil {
				t.release(f, latch.X)
				return res, err
			}
			n.removeEntryAt(i)
			f.MarkDirty(lsn)
			res.Collected++
			t.Stats.Removes.Add(1)
			t.met.Removes.Inc()
			t.met.PseudoDeleted.Dec()
		}
		next := n.next
		if next == NoPage {
			t.release(f, latch.X)
			return res, nil
		}
		nf, nn, err := t.fetchLatched(next, latch.X)
		if err != nil {
			t.release(f, latch.X)
			return res, err
		}
		t.release(f, latch.X)
		f, n = nf, nn
	}
}
