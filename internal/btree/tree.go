package btree

import (
	"fmt"
	"sync"
	"sync/atomic"

	"onlineindex/internal/buffer"
	"onlineindex/internal/latch"
	"onlineindex/internal/metrics"
	"onlineindex/internal/rm"
	"onlineindex/internal/types"
	"onlineindex/internal/wal"
)

// RootPage is the fixed page number of the root: the root never moves (root
// growth copies its content into two new children), so no anchor pointer
// needs maintenance.
const RootPage types.PageNum = 0

// Stats counts tree activity for the experiment harness.
type Stats struct {
	Descents      atomic.Uint64 // full root-to-leaf traversals
	FastPathHits  atomic.Uint64 // IB inserts that reused the remembered leaf
	Splits        atomic.Uint64
	RootSplits    atomic.Uint64
	Inserts       atomic.Uint64
	Noops         atomic.Uint64 // txn inserts rejected as duplicates (IB won the race)
	Reactivates   atomic.Uint64
	PseudoDeletes atomic.Uint64
	Tombstones    atomic.Uint64 // pseudo-deleted keys inserted by deleters
	IBSkips       atomic.Uint64 // IB inserts rejected as duplicates (txn won the race)
	Removes       atomic.Uint64 // physical entry removals (GC, undo)
	ScanResumes   atomic.Uint64 // cursor refills (each is one resume descent)
	ScanLeaves    atomic.Uint64 // leaves visited by cursor refills
}

// StatsSnapshot is a plain-value copy of Stats.
type StatsSnapshot struct {
	Descents, FastPathHits, Splits, RootSplits, Inserts, Noops,
	Reactivates, PseudoDeletes, Tombstones, IBSkips, Removes,
	ScanResumes, ScanLeaves uint64
}

// Snapshot returns the current counter values.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Descents: s.Descents.Load(), FastPathHits: s.FastPathHits.Load(),
		Splits: s.Splits.Load(), RootSplits: s.RootSplits.Load(),
		Inserts: s.Inserts.Load(), Noops: s.Noops.Load(),
		Reactivates: s.Reactivates.Load(), PseudoDeletes: s.PseudoDeletes.Load(),
		Tombstones: s.Tombstones.Load(), IBSkips: s.IBSkips.Load(),
		Removes: s.Removes.Load(),
		ScanResumes: s.ScanResumes.Load(), ScanLeaves: s.ScanLeaves.Load(),
	}
}

// Metrics holds the tree's registry handles; the zero value disables export.
// PseudoDeleted tracks the entries currently in the pseudo-deleted state: it
// rises at pseudo-delete and tombstone-insert sites and falls when an entry
// is reactivated or physically removed. The gauge is volatile — it counts
// transitions observed by this incarnation, not the on-disk state, so it is
// meaningful only for trees opened before any pseudo entries existed (or
// after a full GC).
type Metrics struct {
	Splits        *metrics.Counter
	RootSplits    *metrics.Counter
	Inserts       *metrics.Counter
	Removes       *metrics.Counter
	PseudoDeleted *metrics.Gauge
	ScanResumes   *metrics.Counter
	ScanLeaves    *metrics.Counter
}

// MetricsFrom resolves the tree's standard instrument names on r. All trees
// attached to the same registry share the instruments (engine-wide totals).
func MetricsFrom(r *metrics.Registry) Metrics {
	return Metrics{
		Splits:        r.Counter("btree.splits"),
		RootSplits:    r.Counter("btree.root_splits"),
		Inserts:       r.Counter("btree.inserts"),
		Removes:       r.Counter("btree.removes"),
		PseudoDeleted: r.Gauge("btree.pseudo_deleted"),
		ScanResumes:   r.Counter("btree.scan_resumes"),
		ScanLeaves:    r.Counter("btree.scan_leaves"),
	}
}

// SetMetrics attaches registry handles. Call before concurrent use.
func (t *Tree) SetMetrics(m Metrics) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.met = m
}

// Tree is one B+-tree index over an index file.
//
// The tree latch (mu) is held in share mode by every entry-level operation
// and in exclusive mode by structure modifications; page latches underneath
// serialize same-leaf access. See the package comment for the deadlock
// argument.
type Tree struct {
	pool   *buffer.Pool
	file   types.FileID
	unique bool
	budget int // max marshalled node size; page.Size normally, smaller in tests

	mu sync.RWMutex
	// uniqMu serializes unique-index inserts on this tree; see
	// tryInsertUnique for the rationale. Always acquired before mu.
	uniqMu sync.Mutex
	Stats  Stats
	met    Metrics
}

// Config tunes a Tree.
type Config struct {
	Unique bool
	// Budget caps node size in bytes; 0 means the full page. Tests use small
	// budgets to force deep trees.
	Budget int
}

// Create formats a new index file with an empty root leaf, logging the
// format under tl (redo-only: index creation is made durable by the DDL
// commit). The file must be empty.
func Create(pool *buffer.Pool, file types.FileID, cfg Config, tl rm.TxnLogger) (*Tree, error) {
	t, err := open(pool, file, cfg)
	if err != nil {
		return nil, err
	}
	n, err := pool.PageCount(file)
	if err != nil {
		return nil, err
	}
	if n != 0 {
		return nil, fmt.Errorf("btree: create on non-empty file %d (%d pages)", file, n)
	}
	f, err := pool.NewPage(file, NewLeaf())
	if err != nil {
		return nil, err
	}
	defer pool.Unpin(f)
	pl := FormatPayload{}
	lsn, err := tl.Log(&wal.Record{
		Type: wal.TypeIdxFormat, Flags: wal.FlagRedo,
		PageID: f.ID, Payload: pl.Encode(),
	})
	if err != nil {
		return nil, err
	}
	f.MarkDirty(lsn)
	return t, nil
}

// Open returns a Tree over an existing index file.
func Open(pool *buffer.Pool, file types.FileID, cfg Config) (*Tree, error) {
	t, err := open(pool, file, cfg)
	if err != nil {
		return nil, err
	}
	n, err := pool.PageCount(file)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("btree: open of empty file %d (use Create)", file)
	}
	return t, nil
}

func open(pool *buffer.Pool, file types.FileID, cfg Config) (*Tree, error) {
	if err := pool.OpenFile(file); err != nil {
		return nil, err
	}
	budget := cfg.Budget
	if budget <= 0 {
		budget = maxBudget
	}
	if budget < 256 {
		return nil, fmt.Errorf("btree: budget %d too small", budget)
	}
	return &Tree{pool: pool, file: file, unique: cfg.Unique, budget: budget}, nil
}

// maxBudget is the default node byte budget (the page size).
const maxBudget = 8192

// FileID returns the index file ID.
func (t *Tree) FileID() types.FileID { return t.file }

// Unique reports whether the tree enforces key-value uniqueness.
func (t *Tree) Unique() bool { return t.unique }

func (t *Tree) pid(n types.PageNum) types.PageID { return types.PageID{File: t.file, Page: n} }

// fetchLatched pins page n and latches it.
func (t *Tree) fetchLatched(n types.PageNum, m latch.Mode) (*buffer.Frame, *Node, error) {
	f, err := t.pool.Fetch(t.pid(n))
	if err != nil {
		return nil, nil, err
	}
	f.Latch.Acquire(m)
	node, ok := f.Page().(*Node)
	if !ok {
		f.Latch.Release(m)
		t.pool.Unpin(f)
		return nil, nil, fmt.Errorf("btree: page %s is not a btree node", t.pid(n))
	}
	return f, node, nil
}

func (t *Tree) release(f *buffer.Frame, m latch.Mode) {
	f.Latch.Release(m)
	t.pool.Unpin(f)
}

// descend walks root-to-leaf for (key, rid) with latch crabbing, returning
// the pinned leaf frame latched in leafMode. Caller must hold t.mu (share is
// enough: node roles and key ranges only change under the exclusive tree
// latch).
func (t *Tree) descend(key []byte, rid types.RID, leafMode latch.Mode) (*buffer.Frame, *Node, error) {
	t.Stats.Descents.Add(1)
	f, n, err := t.fetchLatched(RootPage, latch.S)
	if err != nil {
		return nil, nil, err
	}
	for !n.leaf {
		child := n.children[n.searchChild(key, rid)]
		nf, nn, err := t.fetchLatched(child, latch.S)
		if err != nil {
			t.release(f, latch.S)
			return nil, nil, err
		}
		t.release(f, latch.S)
		f, n = nf, nn
	}
	if leafMode == latch.X {
		// Re-latch exclusively. The leaf's key range cannot change (that
		// would be a structure modification needing the exclusive tree
		// latch), so no revalidation is required; entry positions are
		// searched under the X latch anyway.
		f.Latch.Release(latch.S)
		f.Latch.Acquire(latch.X)
	}
	return f, n, nil
}

// SearchEntry reports whether the exact entry (key, rid) exists, and whether
// it is pseudo-deleted.
func (t *Tree) SearchEntry(key []byte, rid types.RID) (found, pseudo bool, err error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	f, n, err := t.descend(key, rid, latch.S)
	if err != nil {
		return false, false, err
	}
	defer t.release(f, latch.S)
	i, exact := n.searchLeaf(key, rid)
	if !exact {
		return false, false, nil
	}
	return true, n.entries[i].Pseudo, nil
}

// Lookup returns the RIDs of all non-pseudo-deleted entries whose key value
// equals key, in RID order.
func (t *Tree) Lookup(key []byte) ([]types.RID, error) {
	var rids []types.RID
	err := t.ScanRange(key, key, func(e Entry) bool {
		if !e.Pseudo {
			rids = append(rids, e.RID)
		}
		return true
	})
	return rids, err
}

// ScanRange streams every entry (including pseudo-deleted ones, which the
// callback can filter via Entry.Pseudo) with lo <= key value <= hi, in
// (key, RID) order. nil hi means "to the end"; nil lo means "from the
// start". Returning false from fn stops the scan.
func (t *Tree) ScanRange(lo, hi []byte, fn func(e Entry) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	f, n, err := t.descend(lo, types.RID{}, latch.S)
	if err != nil {
		return err
	}
	i, _ := n.searchLeaf(lo, types.RID{})
	for {
		for ; i < len(n.entries); i++ {
			e := n.entries[i]
			if hi != nil && CompareEntry(e.Key, types.RID{}, hi, types.MaxRID) > 0 {
				t.release(f, latch.S)
				return nil
			}
			if !fn(Entry{Key: append([]byte(nil), e.Key...), RID: e.RID, Pseudo: e.Pseudo}) {
				t.release(f, latch.S)
				return nil
			}
		}
		next := n.next
		if next == NoPage {
			t.release(f, latch.S)
			return nil
		}
		nf, nn, err := t.fetchLatched(next, latch.S)
		if err != nil {
			t.release(f, latch.S)
			return err
		}
		t.release(f, latch.S)
		f, n = nf, nn
		i = 0
	}
}

// LeafPages returns the page numbers of the leaf chain in key order. The
// clustering experiments (E4) measure how physically sequential this
// sequence is.
func (t *Tree) LeafPages() ([]types.PageNum, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	f, n, err := t.descend(nil, types.RID{}, latch.S)
	if err != nil {
		return nil, err
	}
	var pages []types.PageNum
	for {
		pages = append(pages, f.ID.Page)
		next := n.next
		if next == NoPage {
			t.release(f, latch.S)
			return pages, nil
		}
		nf, nn, err := t.fetchLatched(next, latch.S)
		if err != nil {
			t.release(f, latch.S)
			return nil, err
		}
		t.release(f, latch.S)
		f, n = nf, nn
	}
}

// Height returns the number of levels (1 = root is a leaf).
func (t *Tree) Height() (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	h := 1
	pg := RootPage
	for {
		f, n, err := t.fetchLatched(pg, latch.S)
		if err != nil {
			return 0, err
		}
		leaf := n.leaf
		var child types.PageNum
		if !leaf {
			child = n.children[0]
		}
		t.release(f, latch.S)
		if leaf {
			return h, nil
		}
		h++
		pg = child
	}
}

// AvgBranchFanout returns the mean number of children per internal page,
// or 0 for a single-leaf tree. Prefix truncation makes separators shorter and
// branch pages correspondingly wider, so the compression benchmarks report
// this next to the spill-byte counts.
func (t *Tree) AvgBranchFanout() (float64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	level := []types.PageNum{RootPage}
	var nodes, children int
	for len(level) > 0 {
		var next []types.PageNum
		for _, pg := range level {
			f, n, err := t.fetchLatched(pg, latch.S)
			if err != nil {
				return 0, err
			}
			if !n.leaf {
				nodes++
				children += len(n.children)
				next = append(next, n.children...)
			}
			t.release(f, latch.S)
		}
		level = next
	}
	if nodes == 0 {
		return 0, nil
	}
	return float64(children) / float64(nodes), nil
}

// CountEntries returns the number of live and pseudo-deleted entries.
func (t *Tree) CountEntries() (live, pseudo int, err error) {
	err = t.ScanRange(nil, nil, func(e Entry) bool {
		if e.Pseudo {
			pseudo++
		} else {
			live++
		}
		return true
	})
	return live, pseudo, err
}

// PageCount returns the number of pages in the index file.
func (t *Tree) PageCount() (types.PageNum, error) { return t.pool.PageCount(t.file) }
