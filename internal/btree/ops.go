package btree

import (
	"errors"
	"fmt"

	"onlineindex/internal/buffer"
	"onlineindex/internal/latch"
	"onlineindex/internal/rm"
	"onlineindex/internal/types"
	"onlineindex/internal/wal"
)

// InsertResult describes the outcome of a transaction's key insert (§2.1.1):
// the index manager "rejects insertion of a duplicate key", and the caller's
// logging differs by outcome.
type InsertResult int

// Insert outcomes.
const (
	// Inserted: the entry was added; an undo-redo record was written.
	Inserted InsertResult = iota
	// AlreadyPresent: an identical non-pseudo entry existed (IB inserted it
	// first); an undo-only record was written so rollback still deletes the
	// key even though this transaction did not physically insert it.
	AlreadyPresent
	// Reactivated: an identical pseudo-deleted entry existed; its flag was
	// cleared (the paper's example, step 8) with an undo-redo record.
	Reactivated
)

func (r InsertResult) String() string {
	switch r {
	case Inserted:
		return "Inserted"
	case AlreadyPresent:
		return "AlreadyPresent"
	case Reactivated:
		return "Reactivated"
	default:
		return fmt.Sprintf("InsertResult(%d)", int(r))
	}
}

// UniqueConflict reports that a unique index already holds the key value
// under a different RID. The caller (transaction or IB) resolves it with the
// §2.2.3 protocol: lock the competing records, re-verify, and either fail
// with a unique-violation, retry, or ReplaceRID a terminated pseudo entry.
type UniqueConflict struct {
	OtherRID types.RID
	Pseudo   bool
}

func (u *UniqueConflict) Error() string {
	return fmt.Sprintf("btree: unique conflict with entry at %s (pseudo=%v)", u.OtherRID, u.Pseudo)
}

// ErrTooManyDuplicates guards the bounded same-key-value walk.
var ErrTooManyDuplicates = errors.New("btree: same-key-value run spans too many leaves")

// maxRunLeaves bounds how many leaves a unique-insert duplicate check will
// walk. A unique index holds at most one live entry per key value plus
// pseudo-deleted tombstones, so a run this long means GC is badly overdue.
const maxRunLeaves = 8

// TxnInsert performs a transaction's key insert during forward processing
// under the NSF rules. It writes the appropriate log record itself (see
// InsertResult). A nil UniqueConflict means the operation completed.
func (t *Tree) TxnInsert(tl rm.TxnLogger, key []byte, rid types.RID) (InsertResult, *UniqueConflict, error) {
	for attempt := 0; ; attempt++ {
		if attempt > 64 {
			return 0, nil, fmt.Errorf("btree: insert retry livelock")
		}
		res, conflict, needSplit, err := t.tryInsert(tl, key, rid, false, false)
		if err != nil || conflict != nil || !needSplit {
			return res, conflict, err
		}
		if err := t.makeRoom(tl, key, rid, false); err != nil {
			return 0, nil, err
		}
	}
}

// DeleteOutcome describes a transaction's key delete (§2.2.3, "IB and Delete
// Operations").
type DeleteOutcome int

// Delete outcomes.
const (
	// DeleteMarked: the key existed and was marked pseudo-deleted.
	DeleteMarked DeleteOutcome = iota
	// DeleteAlreadyPseudo: the key was already pseudo-deleted; nothing was
	// changed or logged.
	DeleteAlreadyPseudo
	// DeleteTombstoned: the key did not exist; a pseudo-deleted key was
	// inserted as a tombstone so a later insert attempt by IB is rejected.
	DeleteTombstoned
)

// TxnPseudoDelete performs a transaction's key delete: mark pseudo if
// present, insert a pseudo-deleted tombstone if not. Undo-redo records are
// written for both cases ("the deleter (1) inserts the key with an indicator
// that it is pseudo deleted and (2) writes the usual log record").
func (t *Tree) TxnPseudoDelete(tl rm.TxnLogger, key []byte, rid types.RID) (DeleteOutcome, error) {
	for attempt := 0; ; attempt++ {
		if attempt > 64 {
			return 0, fmt.Errorf("btree: delete retry livelock")
		}
		out, needSplit, err := t.tryPseudoDelete(tl, key, rid)
		if err != nil || !needSplit {
			return out, err
		}
		if err := t.makeRoom(tl, key, rid, false); err != nil {
			return 0, err
		}
	}
}

func (t *Tree) tryPseudoDelete(tl rm.TxnLogger, key []byte, rid types.RID) (DeleteOutcome, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	f, n, err := t.descend(key, rid, latch.X)
	if err != nil {
		return 0, false, err
	}
	defer t.release(f, latch.X)
	i, exact := n.searchLeaf(key, rid)
	if exact {
		if n.entries[i].Pseudo {
			return DeleteAlreadyPseudo, false, nil
		}
		pl := EntryPayload{Key: key, RID: rid}
		lsn, err := tl.Log(&wal.Record{
			Type: wal.TypeIdxPseudoDel, Flags: wal.FlagRedo | wal.FlagUndo,
			PageID: f.ID, Payload: pl.Encode(),
		})
		if err != nil {
			return 0, false, err
		}
		n.entries[i].Pseudo = true
		f.MarkDirty(lsn)
		t.Stats.PseudoDeletes.Add(1)
		t.met.PseudoDeleted.Inc()
		return DeleteMarked, false, nil
	}
	// Tombstone insert: pseudo-deleted key so IB's later insert is rejected.
	if !n.hasRoomEntry(key, t.budget) {
		return 0, true, nil
	}
	pl := EntryPayload{Key: key, RID: rid, Pseudo: true}
	lsn, err := tl.Log(&wal.Record{
		Type: wal.TypeIdxInsert, Flags: wal.FlagRedo | wal.FlagUndo,
		PageID: f.ID, Payload: pl.Encode(),
	})
	if err != nil {
		return 0, false, err
	}
	n.insertEntryAt(i, Entry{Key: key, RID: rid, Pseudo: true})
	f.MarkDirty(lsn)
	t.Stats.Tombstones.Add(1)
	t.met.PseudoDeleted.Inc()
	return DeleteTombstoned, false, nil
}

// tryInsert is one attempt at an insert under the share tree latch. It
// returns needSplit=true (with nothing logged) when the target leaf lacks
// room. ib selects the index builder's duplicate rules (skip silently, no
// noop logging); pseudo inserts the entry in the pseudo-deleted state.
func (t *Tree) tryInsert(tl rm.TxnLogger, key []byte, rid types.RID, pseudo, ib bool) (InsertResult, *UniqueConflict, bool, error) {
	if t.unique {
		t.uniqMu.Lock()
		defer t.uniqMu.Unlock()
	}
	t.mu.RLock()
	defer t.mu.RUnlock()

	if t.unique {
		return t.tryInsertUnique(tl, key, rid, pseudo, ib)
	}
	f, n, err := t.descend(key, rid, latch.X)
	if err != nil {
		return 0, nil, false, err
	}
	defer t.release(f, latch.X)
	i, exact := n.searchLeaf(key, rid)
	if exact {
		res, err := t.handleExisting(tl, f, n, i, ib)
		return res, nil, false, err
	}
	if !n.hasRoomEntry(key, t.budget) {
		return 0, nil, true, nil
	}
	res, err := t.doInsertAt(tl, f, n, i, key, rid, pseudo, ib)
	return res, nil, false, err
}

// tryInsertUnique handles the unique-index insert path. Same-tree unique
// inserts are serialized by t.uniqMu (acquired by the caller before the tree
// latch), which closes the check-then-insert race between two inserters of
// the same key value — the paper's systems close it with key-value locks in
// the lock manager; a per-tree mutex is this engine's equivalent with the
// same observable semantics and less machinery. Deletes, reads and
// other-tree operations are unaffected.
//
// The same-key-value run (which may cross leaf boundaries) is first walked
// with share latches to classify what exists: the exact entry, a live
// conflicting entry, or pseudo-deleted conflicting entries. The actual
// modification then re-descends to the exact position. Entries cannot move
// between leaves in the meantime because structure modifications need the
// exclusive tree latch, which our share hold excludes.
func (t *Tree) tryInsertUnique(tl rm.TxnLogger, key []byte, rid types.RID, pseudo, ib bool) (InsertResult, *UniqueConflict, bool, error) {
	exactFound := false
	var liveOther, pseudoOther *types.RID

	f, n, err := t.descend(key, types.RID{}, latch.S)
	if err != nil {
		return 0, nil, false, err
	}
	i, _ := n.searchLeaf(key, types.RID{})
	hops := 0
walk:
	for {
		for ; i < len(n.entries); i++ {
			e := n.entries[i]
			if CompareEntry(e.Key, types.RID{}, key, types.RID{}) != 0 {
				break walk // past the key value's run
			}
			switch {
			case e.RID == rid:
				exactFound = true
			case !e.Pseudo:
				r := e.RID
				liveOther = &r
			default:
				if pseudoOther == nil {
					r := e.RID
					pseudoOther = &r
				}
			}
		}
		if n.next == NoPage {
			break
		}
		hops++
		if hops > maxRunLeaves {
			t.release(f, latch.S)
			return 0, nil, false, ErrTooManyDuplicates
		}
		nf, nn, err := t.fetchLatched(n.next, latch.S)
		if err != nil {
			t.release(f, latch.S)
			return 0, nil, false, err
		}
		t.release(f, latch.S)
		f, n = nf, nn
		i = 0
		if len(n.entries) > 0 && CompareEntry(n.entries[0].Key, types.RID{}, key, types.RID{}) != 0 {
			break
		}
	}
	t.release(f, latch.S)

	if liveOther != nil && !exactFound {
		return 0, &UniqueConflict{OtherRID: *liveOther}, false, nil
	}
	if pseudoOther != nil && !exactFound && liveOther == nil {
		return 0, &UniqueConflict{OtherRID: *pseudoOther, Pseudo: true}, false, nil
	}

	// Either the exact entry exists (handle its state) or no entry with this
	// key value exists (insert). Re-descend to (key, rid) exclusively.
	xf, xn, err := t.descend(key, rid, latch.X)
	if err != nil {
		return 0, nil, false, err
	}
	defer t.release(xf, latch.X)
	pos, exact := xn.searchLeaf(key, rid)
	if exact {
		res, err := t.handleExisting(tl, xf, xn, pos, ib)
		return res, nil, false, err
	}
	if exactFound {
		// The entry vanished between the walk and the re-descent (a
		// concurrent physical remove, e.g. GC); fall through to insert.
		_ = exactFound
	}
	if !xn.hasRoomEntry(key, t.budget) {
		return 0, nil, true, nil
	}
	res, err := t.doInsertAt(tl, xf, xn, pos, key, rid, pseudo, ib)
	return res, nil, false, err
}

// handleExisting applies the duplicate rules when the exact entry (key,rid)
// already exists at index i of node n.
func (t *Tree) handleExisting(tl rm.TxnLogger, f *buffer.Frame, n *Node, i int, ib bool) (InsertResult, error) {
	e := &n.entries[i]
	if ib {
		// "IB's attempt to insert a key which is currently present in the
		// index in the pseudo-deleted state is rejected" — and likewise for
		// a live duplicate. No log record is written by IB (§2.2.3).
		t.Stats.IBSkips.Add(1)
		return AlreadyPresent, nil
	}
	if e.Pseudo {
		// Transaction insert finds its own key pseudo-deleted (example step
		// 8): reactivate with an undo-redo record.
		pl := EntryPayload{Key: e.Key, RID: e.RID}
		lsn, err := tl.Log(&wal.Record{
			Type: wal.TypeIdxReactivate, Flags: wal.FlagRedo | wal.FlagUndo,
			PageID: f.ID, Payload: pl.Encode(),
		})
		if err != nil {
			return 0, err
		}
		e.Pseudo = false
		f.MarkDirty(lsn)
		t.Stats.Reactivates.Add(1)
		t.met.PseudoDeleted.Dec()
		return Reactivated, nil
	}
	// "The transaction always writes a log record saying that it inserted
	// the key even though sometimes it may not actually insert the key since
	// IB had already inserted it" — undo-only, so rollback deletes IB's key.
	pl := EntryPayload{Key: e.Key, RID: e.RID}
	if _, err := tl.Log(&wal.Record{
		Type: wal.TypeIdxInsertNoop, Flags: wal.FlagUndo,
		PageID: f.ID, Payload: pl.Encode(),
	}); err != nil {
		return 0, err
	}
	// No page change and no redo: the page LSN is not advanced.
	t.Stats.Noops.Add(1)
	return AlreadyPresent, nil
}

// doInsertAt inserts the entry at position i of leaf n with an undo-redo log
// record. IB inserts are logged as one-entry TypeIdxMultiInsert records: a
// TypeIdxInsert is undone by pseudo-deletion, which would leave a tombstone
// that the restarted build's re-insert of the same key then skips as a
// duplicate — the entry would stay dead forever. Multi-insert undo removes
// the entry physically (IB's uncommitted inserts are its own; see
// UndoMultiInsert), so the re-insert after a crash mid-build lands cleanly.
func (t *Tree) doInsertAt(tl rm.TxnLogger, f *buffer.Frame, n *Node, i int, key []byte, rid types.RID, pseudo, ib bool) (InsertResult, error) {
	var lsn types.LSN
	var err error
	if ib && !pseudo {
		pl := MultiInsertPayload{Entries: []Entry{{Key: key, RID: rid}}}
		lsn, err = tl.Log(&wal.Record{
			Type: wal.TypeIdxMultiInsert, Flags: wal.FlagRedo | wal.FlagUndo,
			PageID: f.ID, Payload: pl.Encode(),
		})
	} else {
		pl := EntryPayload{Key: key, RID: rid, Pseudo: pseudo}
		lsn, err = tl.Log(&wal.Record{
			Type: wal.TypeIdxInsert, Flags: wal.FlagRedo | wal.FlagUndo,
			PageID: f.ID, Payload: pl.Encode(),
		})
	}
	if err != nil {
		return 0, err
	}
	n.insertEntryAt(i, Entry{Key: key, RID: rid, Pseudo: pseudo})
	f.MarkDirty(lsn)
	t.Stats.Inserts.Add(1)
	t.met.Inserts.Inc()
	if pseudo {
		t.Stats.Tombstones.Add(1)
		t.met.PseudoDeleted.Inc()
	}
	return Inserted, nil
}

// RemoveEntry physically removes the entry (key, rid) with an undo-redo log
// record (undo re-inserts it in its prior state). It is used by the
// unique-index ReplaceRID protocol and by rollbacks; GC uses GCRemove.
func (t *Tree) RemoveEntry(tl rm.TxnLogger, key []byte, rid types.RID) (bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	f, n, err := t.descend(key, rid, latch.X)
	if err != nil {
		return false, err
	}
	defer t.release(f, latch.X)
	i, exact := n.searchLeaf(key, rid)
	if !exact {
		return false, nil
	}
	pl := EntryPayload{Key: key, RID: rid, Pseudo: n.entries[i].Pseudo}
	lsn, err := tl.Log(&wal.Record{
		Type: wal.TypeIdxDelete, Flags: wal.FlagRedo | wal.FlagUndo,
		PageID: f.ID, Payload: pl.Encode(),
	})
	if err != nil {
		return false, err
	}
	wasPseudo := n.entries[i].Pseudo
	n.removeEntryAt(i)
	f.MarkDirty(lsn)
	t.Stats.Removes.Add(1)
	t.met.Removes.Inc()
	if wasPseudo {
		t.met.PseudoDeleted.Dec()
	}
	return true, nil
}

// ReplaceRID implements the paper's unique-index takeover (§2.2.3 example):
// after the caller has verified that the inserter/deleter of the
// pseudo-deleted entry <key, oldRID> has terminated, the entry is replaced
// by a live <key, newRID>. Implemented as a logged physical remove plus a
// fresh insert so the leaf's (key, RID) ordering is preserved even when the
// two positions differ.
func (t *Tree) ReplaceRID(tl rm.TxnLogger, key []byte, oldRID, newRID types.RID) error {
	removed, err := t.RemoveEntry(tl, key, oldRID)
	if err != nil {
		return err
	}
	if !removed {
		return fmt.Errorf("btree: ReplaceRID: entry %s not found", oldRID)
	}
	res, conflict, err := t.TxnInsert(tl, key, newRID)
	if err != nil {
		return err
	}
	if conflict != nil {
		return conflict
	}
	if res != Inserted {
		return fmt.Errorf("btree: ReplaceRID: unexpected insert result %s", res)
	}
	return nil
}
