package btree

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"onlineindex/internal/rm"
)

// TestCursorScanStress races batched cursor scans against splitting inserts,
// pseudo-deletes and GC-style physical removals. Run with -race. Each scan
// asserts the cursor contract that holds under concurrency: strictly
// increasing (key, RID) order (no duplicates, no regressions) and that every
// entry present for the whole scan is returned.
func TestCursorScanStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	_, log, _, tr := newTree(t, false, smallBudget)
	seedTL := &rm.SimpleLogger{L: log, Txn: 1}

	const (
		stable  = 500  // ids always present, never mutated
		churnLo = 1000 // ids the mutators cycle through
		churnN  = 300
	)
	for i := 0; i < stable; i++ {
		if _, _, err := tr.TxnInsert(seedTL, keyOf(i), ridOf(i)); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		stop.Store(true)
		t.Errorf(format, args...)
	}

	// Mutator: insert → pseudo-delete → remove churn ids in a rolling window,
	// forcing splits, state flips and physical removals all over the keyspace.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tl := &rm.SimpleLogger{L: log, Txn: 2}
		for round := 0; !stop.Load(); round++ {
			for j := 0; j < churnN; j++ {
				id := churnLo + j
				if _, _, err := tr.TxnInsert(tl, keyOf(id), ridOf(id)); err != nil {
					fail("churn insert: %v", err)
					return
				}
			}
			for j := 0; j < churnN; j += 2 {
				id := churnLo + j
				if _, err := tr.TxnPseudoDelete(tl, keyOf(id), ridOf(id)); err != nil {
					fail("churn pseudo-delete: %v", err)
					return
				}
			}
			for j := 0; j < churnN; j++ {
				id := churnLo + j
				if _, err := tr.RemoveEntry(tl, keyOf(id), ridOf(id)); err != nil {
					fail("churn remove: %v", err)
					return
				}
			}
		}
	}()

	// Scanners: repeated full-range cursor scans with small batches so every
	// scan interleaves many refills with the mutator.
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for iter := 0; iter < 40 && !stop.Load(); iter++ {
				c := tr.NewCursor(nil, nil)
				c.SetBatch(8, 2)
				var prev Entry
				have := false
				liveStable := 0
				for {
					e, ok, err := c.Next()
					if err != nil {
						fail("scanner %d: %v", seed, err)
						return
					}
					if !ok {
						break
					}
					if have {
						if CompareEntry(prev.Key, prev.RID, e.Key, e.RID) >= 0 {
							fail("scanner %d: order violation %q/%v then %q/%v",
								seed, prev.Key, prev.RID, e.Key, e.RID)
							return
						}
					}
					prev = Entry{Key: e.Key, RID: e.RID}
					have = true
					if bytes.Compare(e.Key, keyOf(stable)) < 0 && !e.Pseudo {
						liveStable++
					}
				}
				if liveStable != stable {
					fail("scanner %d: saw %d stable entries, want %d", seed, liveStable, stable)
					return
				}
			}
			stop.Store(true) // one scanner finishing its quota ends the run
		}(s)
	}

	wg.Wait()
	checkInvariants(t, tr)
}
