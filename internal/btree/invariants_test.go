package btree

import (
	"fmt"
	"testing"

	"onlineindex/internal/types"
)

// checkInvariants delegates to the exported CheckInvariants (shared with the
// crash-sweep oracle), failing the test on the first violation.
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	if err := CheckInvariants(tr); err != nil {
		t.Fatal(err)
	}
}

// collect returns all entries in order.
func collect(t *testing.T, tr *Tree) []Entry {
	t.Helper()
	var out []Entry
	if err := tr.ScanRange(nil, nil, func(e Entry) bool {
		out = append(out, e)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func keyOf(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

func ridOf(i int) types.RID {
	return types.RID{PageID: types.PageID{File: 1, Page: types.PageNum(i / 100)}, Slot: types.SlotNum(i % 100)}
}
