package btree

import (
	"fmt"
	"testing"

	"onlineindex/internal/types"
)

// checkInvariants validates the whole tree structure:
//   - every node's keys are strictly sorted by (key, RID);
//   - child subtrees respect their separators;
//   - all leaves are at the same depth;
//   - the leaf chain visits exactly the leaves, left to right;
//   - byte accounting matches recomputation.
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	var leavesByTree []types.PageNum
	var walk func(pg types.PageNum, lo, hi *sep, depth int) int
	walk = func(pg types.PageNum, lo, hi *sep, depth int) int {
		f, err := tr.pool.Fetch(tr.pid(pg))
		if err != nil {
			t.Fatalf("fetch %d: %v", pg, err)
		}
		defer tr.pool.Unpin(f)
		n := f.Page().(*Node)

		within := func(key []byte, rid types.RID, what string) {
			if lo != nil && CompareEntry(key, rid, lo.key, lo.rid) < 0 {
				t.Fatalf("page %d: %s <%x,%s> below low bound <%x>", pg, what, key, rid, lo.key)
			}
			if hi != nil && CompareEntry(key, rid, hi.key, hi.rid) >= 0 {
				t.Fatalf("page %d: %s <%x,%s> not below high bound <%x>", pg, what, key, rid, hi.key)
			}
		}

		if n.leaf {
			used := nodeFixed
			for i, e := range n.entries {
				within(e.Key, e.RID, "entry")
				if i > 0 {
					p := n.entries[i-1]
					if CompareEntry(p.Key, p.RID, e.Key, e.RID) >= 0 {
						t.Fatalf("page %d: entries %d,%d out of order", pg, i-1, i)
					}
				}
				used += entryBytes(e.Key)
			}
			if used != n.used {
				t.Fatalf("page %d: used=%d, recomputed %d", pg, n.used, used)
			}
			leavesByTree = append(leavesByTree, pg)
			return 1
		}

		used := nodeFixed + 4*len(n.children)
		if len(n.children) != len(n.seps)+1 {
			t.Fatalf("page %d: %d children, %d seps", pg, len(n.children), len(n.seps))
		}
		for i, s := range n.seps {
			within(s.key, s.rid, "sep")
			if i > 0 {
				p := n.seps[i-1]
				if CompareEntry(p.key, p.rid, s.key, s.rid) >= 0 {
					t.Fatalf("page %d: seps %d,%d out of order", pg, i-1, i)
				}
			}
			used += sepBytes(s.key)
		}
		if used != n.used {
			t.Fatalf("page %d: used=%d, recomputed %d", pg, n.used, used)
		}
		depth0 := -1
		for i, c := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = &n.seps[i-1]
			}
			if i < len(n.seps) {
				chi = &n.seps[i]
			}
			d := walk(c, clo, chi, depth+1)
			if depth0 == -1 {
				depth0 = d
			} else if d != depth0 {
				t.Fatalf("page %d: uneven leaf depth under children", pg)
			}
		}
		return depth0 + 1
	}
	walk(RootPage, nil, nil, 0)

	chain, err := tr.LeafPages()
	if err != nil {
		t.Fatalf("leaf chain: %v", err)
	}
	if len(chain) != len(leavesByTree) {
		t.Fatalf("leaf chain has %d pages, tree walk found %d", len(chain), len(leavesByTree))
	}
	for i := range chain {
		if chain[i] != leavesByTree[i] {
			t.Fatalf("leaf chain[%d]=%d, tree order %d", i, chain[i], leavesByTree[i])
		}
	}
}

// collect returns all entries in order.
func collect(t *testing.T, tr *Tree) []Entry {
	t.Helper()
	var out []Entry
	if err := tr.ScanRange(nil, nil, func(e Entry) bool {
		out = append(out, e)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func keyOf(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

func ridOf(i int) types.RID {
	return types.RID{PageID: types.PageID{File: 1, Page: types.PageNum(i / 100)}, Slot: types.SlotNum(i % 100)}
}
