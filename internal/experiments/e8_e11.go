package experiments

import (
	"fmt"
	"time"

	"onlineindex/internal/catalog"
	"onlineindex/internal/core"
	"onlineindex/internal/engine"
	"onlineindex/internal/harness"
	"onlineindex/internal/vfs"
	"onlineindex/internal/workload"
)

// E8PseudoGC measures pseudo-deleted key accumulation in an NSF build under
// a delete-heavy workload, and the garbage collection pass.
//
// Paper claims (§2.2.4): "keys deleted in such a fashion take up room in the
// index ... pseudo-deleted keys can cause unnecessary page splits and cause
// more pages to be allocated for the index than are actually required";
// GC skips keys whose deletion is "probably uncommitted".
func E8PseudoGC(cfg Config) error {
	n := cfg.rows(15_000)
	var rows [][]string
	for _, deletePct := range []int{10, 30, 50} {
		db, rids, err := setup(n)
		if err != nil {
			return err
		}
		if _, err := core.Build(db, spec("by_key", catalog.MethodNSF), core.Options{}); err != nil {
			return err
		}
		ix, _ := db.Catalog().Index("by_key")
		tree, err := db.TreeOf(ix.ID)
		if err != nil {
			return err
		}
		pagesBuilt, _ := tree.PageCount()

		// Delete a fraction of the rows: every delete leaves a
		// pseudo-deleted key. One deleter stays uncommitted so GC has
		// something it must skip.
		toDelete := n * deletePct / 100
		for i := 0; i < toDelete-1; i++ {
			tx := db.Begin()
			if err := db.Delete(tx, tableName, rids[i*97%n]); err == nil {
				tx.Commit()
			} else {
				tx.Rollback()
			}
		}
		holdout := db.Begin()
		db.Delete(holdout, tableName, rids[n-1]) //nolint:errcheck

		live0, pseudo0, err := tree.CountEntries()
		if err != nil {
			return err
		}
		pagesBefore, _ := tree.PageCount()
		res, err := core.GC(db, "by_key")
		if err != nil {
			return err
		}
		_, pseudo1, _ := tree.CountEntries()
		holdout.Commit()
		if err := db.CheckIndexConsistency("by_key"); err != nil {
			return fmt.Errorf("E8: %w", err)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d%%", deletePct),
			harness.N(uint64(live0)), harness.N(uint64(pseudo0)),
			fmt.Sprintf("%d -> %d", pagesBuilt, pagesBefore),
			harness.N(uint64(res.Collected)), harness.N(uint64(res.Skipped)),
			harness.N(uint64(pseudo1)),
		})
	}
	cfg.printf("%s\n", harness.Table(
		"E8  Pseudo-deleted key accumulation and GC (one delete held uncommitted)",
		[]string{"rows deleted", "live", "pseudo before GC", "idx pages (built -> now)", "GC collected", "GC skipped", "pseudo after"},
		rows))
	return nil
}

// E9MultiIndex compares building three indexes in one scan against three
// sequential single-index builds.
//
// Paper claim (§6.2): "since the cost of accessing all the data pages may be
// a significant part of the overall cost of index build, it would be very
// beneficial to build multiple indexes in one data scan."
func E9MultiIndex(cfg Config) error {
	n := cfg.rows(40_000)
	// The paper's premise is an I/O-dominated scan ("the cost of accessing
	// all the data pages may be a significant part of the overall cost"):
	// run on a simulated disk (50us/op) with a buffer pool far smaller than
	// the table, so every scan pass really rereads the pages.
	mkDB := func() (*engine.DB, error) {
		fs := vfs.NewMemFS()
		db, err := engine.Open(engine.Config{FS: fs, PoolSize: 96})
		if err != nil {
			return nil, err
		}
		if _, err := db.CreateTable(tableName, workload.Schema()); err != nil {
			return nil, err
		}
		if _, err := workload.Populate(db, tableName, n, 24); err != nil {
			return nil, err
		}
		fs.SetLatency(50*time.Microsecond, 512<<20)
		return db, nil
	}
	mkSpecs := func(prefix string, method catalog.BuildMethod) []engine.CreateIndexSpec {
		return []engine.CreateIndexSpec{
			{Name: prefix + "_key", Table: tableName, Columns: []string{"key"}, Method: method},
			{Name: prefix + "_id", Table: tableName, Columns: []string{"id"}, Method: method},
			{Name: prefix + "_filler", Table: tableName, Columns: []string{"filler"}, Method: method},
		}
	}
	var rows [][]string
	for _, method := range []catalog.BuildMethod{catalog.MethodNSF, catalog.MethodSF} {
		// Sequential.
		db, err := mkDB()
		if err != nil {
			return err
		}
		start := time.Now()
		var pagesScanned uint64
		for _, s := range mkSpecs("seq", method) {
			res, err := core.Build(db, s, core.Options{})
			if err != nil {
				return err
			}
			pagesScanned += res.Stats.PagesScanned
		}
		seqDur := time.Since(start)

		// Single scan.
		db2, err := mkDB()
		if err != nil {
			return err
		}
		start = time.Now()
		results, err := core.BuildMany(db2, mkSpecs("multi", method), core.Options{})
		if err != nil {
			return err
		}
		multiDur := time.Since(start)
		var multiScanned uint64
		if len(results) > 0 {
			multiScanned = results[0].Stats.PagesScanned // shared scan: same for all
		}
		for _, s := range mkSpecs("multi", method) {
			if err := db2.CheckIndexConsistency(s.Name); err != nil {
				return fmt.Errorf("E9 %s: %w", s.Name, err)
			}
		}
		rows = append(rows, []string{
			methodName(method),
			ms(seqDur), harness.N(pagesScanned),
			ms(multiDur), harness.N(multiScanned),
			fmt.Sprintf("%.2fx", seqDur.Seconds()/multiDur.Seconds()),
		})
	}
	cfg.printf("%s\n", harness.Table(
		"E9  Three indexes: sequential builds vs one shared scan (§6.2)",
		[]string{"method", "sequential ms", "pages scanned", "single-scan ms", "pages scanned", "speedup"},
		rows))
	return nil
}

// E10Correctness runs the adversarial correctness battery: the §2.2.3
// worked example races, rollback interleavings and unique-key takeovers,
// during real online builds, verifying the final index exactly matches the
// table every time.
func E10Correctness(cfg Config) error {
	var rows [][]string
	trials := 6
	for _, method := range []catalog.BuildMethod{catalog.MethodNSF, catalog.MethodSF} {
		passed := 0
		for trial := 0; trial < trials; trial++ {
			db, rids, err := setup(cfg.rows(4_000))
			if err != nil {
				return err
			}
			// Aggressive mix with high rollback probability.
			mix := workload.Mix{InsertPct: 30, DeletePct: 30, UpdatePct: 30, RollbackPct: 30}
			runner := workload.NewRunner(db, tableName, rids, 4, mix)
			runner.Start()
			_, err = core.Build(db, spec("by_key", method), core.Options{
				CheckpointPages: 4, CheckpointKeys: 300,
				SortSideFile: trial%2 == 0,
			})
			runner.Stop()
			if err != nil {
				return err
			}
			if errs := runner.Errs(); len(errs) > 0 {
				return fmt.Errorf("E10: workload error: %v", errs[0])
			}
			if err := db.CheckIndexConsistency("by_key"); err != nil {
				return fmt.Errorf("E10 %s trial %d: %w", method, trial, err)
			}
			passed++
		}
		rows = append(rows, []string{
			methodName(method), fmt.Sprintf("%d/%d", passed, trials), "index == table after every trial",
		})
	}
	// Unique-index adversarial pass.
	for _, method := range []catalog.BuildMethod{catalog.MethodNSF, catalog.MethodSF} {
		db, rids, err := setup(cfg.rows(3_000))
		if err != nil {
			return err
		}
		mix := workload.Mix{InsertPct: 35, DeletePct: 35, UpdatePct: 20, RollbackPct: 25}
		runner := workload.NewRunner(db, tableName, rids, 3, mix)
		runner.Start()
		_, err = core.Build(db, engine.CreateIndexSpec{
			Name: "uniq_id", Table: tableName, Columns: []string{"id"}, Unique: true, Method: method,
		}, core.Options{})
		runner.Stop()
		if err != nil {
			return err
		}
		if errs := runner.Errs(); len(errs) > 0 {
			return fmt.Errorf("E10 unique: workload error: %v", errs[0])
		}
		if err := db.CheckIndexConsistency("uniq_id"); err != nil {
			return fmt.Errorf("E10 unique %s: %w", method, err)
		}
		rows = append(rows, []string{
			methodName(method) + " (unique)", "1/1", "no spurious unique-violation, no duplicates",
		})
	}
	cfg.printf("%s\n", harness.Table(
		"E10  Correctness battery (races + rollbacks during online builds)",
		[]string{"method", "trials passed", "verified"},
		rows))
	return nil
}

// E11SideFile measures side-file growth and catch-up behaviour as update
// pressure rises, including the sorted-application ablation.
//
// Paper claims (§3.2.5): side-file processing catches up while transactions
// keep appending; sorting the accumulated entries before applying them
// improves performance.
func E11SideFile(cfg Config) error {
	n := cfg.rows(30_000)
	var rows [][]string
	for _, workers := range []int{1, 2, 4, 8} {
		for _, sorted := range []bool{false, true} {
			db, rids, err := setup(n)
			if err != nil {
				return err
			}
			runner := workload.NewRunner(db, tableName, rids, workers, workload.DefaultMix)
			runner.Start()
			res, err := core.Build(db, spec("by_key", catalog.MethodSF), core.Options{SortSideFile: sorted})
			runner.Stop()
			if err != nil {
				return err
			}
			if errs := runner.Errs(); len(errs) > 0 {
				return fmt.Errorf("E11: workload error: %v", errs[0])
			}
			if err := db.CheckIndexConsistency("by_key"); err != nil {
				return fmt.Errorf("E11 w=%d: %w", workers, err)
			}
			mode := "sequential"
			if sorted {
				mode = "sorted"
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", workers), mode,
				harness.N(res.Stats.SideFileLen),
				harness.N(res.Stats.SideFileApplied),
				ms(res.Stats.SideFile),
				ms(res.Stats.Insert),
			})
		}
	}
	cfg.printf("%s\n", harness.Table(
		"E11  Side-file length and catch-up vs update pressure (SF)",
		[]string{"updaters", "application", "side-file entries", "applied", "catch-up ms", "load ms"},
		rows))
	return nil
}
