package experiments

import (
	"fmt"
	"runtime"
	"time"

	"onlineindex/internal/catalog"
	"onlineindex/internal/core"
	"onlineindex/internal/engine"
	"onlineindex/internal/harness"
	"onlineindex/internal/vfs"
	"onlineindex/internal/workload"
)

// DiskRecord is one on-disk (OSFS) build measurement, written by
// `benchtab -diskbench` to BENCH_build.json. Unlike the MemFS build records
// it carries allocation accounting from runtime.MemStats deltas, because at
// disk scale the build is decided by per-key allocation churn and copy
// counts, not algorithmic structure — allocs_per_row is the number the
// profile-driven optimization loop drives down, and TestBuildAllocGate
// holds it down.
type DiskRecord struct {
	Kind    string `json:"kind"`    // always "diskbench"
	Variant string `json:"variant"` // "baseline" (pre-optimization) or "optimized"
	Rows    int    `json:"rows"`
	Method  string `json:"method"`
	Workers int    `json:"workers"`
	NumCPU  int    `json:"num_cpu"`

	TotalMs  float64 `json:"total_ms"`
	ScanMs   float64 `json:"scan_sort_ms"`
	InsertMs float64 `json:"insert_ms"`
	SideMs   float64 `json:"side_file_ms"`
	RowsPerS float64 `json:"rows_per_sec"`

	Runs         int    `json:"runs"`
	BytesSpilled uint64 `json:"bytes_spilled"`

	// AllocsPerRow is the heap allocation count per table row over the whole
	// build (runtime.MemStats Mallocs delta / rows); BytesCopied is the total
	// heap bytes allocated by the build (TotalAlloc delta) — every one of
	// those bytes was written at least once, so it bounds the build's memory
	// copy traffic from below.
	AllocsPerRow  float64 `json:"allocs_per_row"`
	BytesCopied   uint64  `json:"bytes_copied"`
	BytesPerRow   float64 `json:"bytes_copied_per_row"`
	PopulateMs    float64 `json:"populate_ms"`
	VerifySkipped bool    `json:"verify_skipped,omitempty"`
}

// diskSortMemory is the tournament-tree capacity the disk benchmark builds
// with. The MemFS experiments keep the core default (4096) to exercise many
// runs; at millions of rows that default would merge over a thousand
// streams, so the disk matrix uses a capacity sized for the scale while
// still spilling tens of runs.
const diskSortMemory = 1 << 18

// diskPoolSize is the buffer-pool frame count for disk builds: large enough
// to hold the working set of the scan (the pool is re-read behind the OS
// page cache), small enough that a 10M-row table does not fit — the disk is
// supposed to be exercised.
const diskPoolSize = 8192

// diskPopulateBatch is the rows-per-commit during table population. The
// default workload batch (100) would pay one real fsync per 100 rows on
// OSFS; population is scaffolding, not the thing being measured, so it
// commits rarely.
const diskPopulateBatch = 10000

// diskVerifyLimit caps the row count at which every built index is fully
// cross-checked against the heap. Above it the offline build is verified
// (cheapest full check) and the rest rely on the per-build unique/adjacency
// invariants — a 10M-row triple verification would dominate the wall clock.
const diskVerifyLimit = 2_000_000

// populateDisk fills the orders table with n rows in large committed
// batches, returning the wall-clock spent.
func populateDisk(db *engine.DB, n int) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < n; {
		tx := db.Begin()
		for j := 0; j < diskPopulateBatch && i < n; j++ {
			if _, err := db.Insert(tx, tableName, workload.RowOf(int64(i), 24)); err != nil {
				tx.Rollback() //nolint:errcheck
				return 0, err
			}
			i++
		}
		if err := tx.Commit(); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// DiskBench stands one n-row table up on OSFS under dir and runs the
// offline/NSF/SF build matrix on it, recording wall-clock, MemStats
// allocation deltas and spill volume per method. The table is populated
// once; each method builds its index, is verified, and drops it before the
// next. variant tags the records so before/after pairs of the optimization
// loop can coexist in BENCH_build.json.
func DiskBench(cfg Config, n int, dir string, variant string) ([]DiskRecord, error) {
	n = cfg.rows(n) // -scale sizes the nominal 10M down for laptops/CI
	osfs, err := vfs.NewOSFS(dir)
	if err != nil {
		return nil, err
	}
	// Write coalescing sits between the engine and the OS: sequential small
	// writes (WAL appends, sort-run spills) reach ext4 as MB-scale WriteAts.
	// The crash sweep runs on bare MemFS/faultfs, so this layer never touches
	// a fault schedule.
	fs := vfs.NewCoalescingFS(osfs, 0)
	db, err := engine.Open(engine.Config{FS: fs, PoolSize: diskPoolSize})
	if err != nil {
		return nil, err
	}
	defer db.Close() //nolint:errcheck
	if _, err := db.CreateTable(tableName, workload.Schema()); err != nil {
		return nil, err
	}
	cfg.printf("diskbench: populating %d rows on %s ...\n", n, dir)
	popDur, err := populateDisk(db, n)
	if err != nil {
		return nil, fmt.Errorf("diskbench populate: %w", err)
	}
	cfg.printf("diskbench: populated in %.1fs\n", popDur.Seconds())

	opts := core.Options{ScanWorkers: cfg.workers(), SortMemory: diskSortMemory}

	var recs []DiskRecord
	var rows [][]string
	for _, method := range []catalog.BuildMethod{catalog.MethodOffline, catalog.MethodNSF, catalog.MethodSF} {
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		res, err := core.Build(db, spec("by_key", method), opts)
		total := time.Since(start)
		runtime.ReadMemStats(&m1)
		if err != nil {
			return nil, fmt.Errorf("diskbench %s: %w", method, err)
		}
		skipVerify := n > diskVerifyLimit && method != catalog.MethodOffline
		if !skipVerify {
			if err := db.CheckIndexConsistency("by_key"); err != nil {
				return nil, fmt.Errorf("diskbench %s: %w", method, err)
			}
		}
		st := res.Stats
		allocs := m1.Mallocs - m0.Mallocs
		bytes := m1.TotalAlloc - m0.TotalAlloc
		rec := DiskRecord{
			Kind: "diskbench", Variant: variant,
			Rows: n, Method: methodName(method), Workers: cfg.workers(),
			NumCPU:  runtime.NumCPU(),
			TotalMs: msf(total), ScanMs: msf(st.ScanSort),
			InsertMs: msf(st.Insert), SideMs: msf(st.SideFile),
			RowsPerS:     float64(n) / total.Seconds(),
			Runs:         st.Runs,
			BytesSpilled: st.BytesSpilled,
			AllocsPerRow: float64(allocs) / float64(n),
			BytesCopied:  bytes,
			BytesPerRow:  float64(bytes) / float64(n),
			PopulateMs:   msf(popDur),
		}
		rec.VerifySkipped = skipVerify
		recs = append(recs, rec)
		rows = append(rows, []string{
			harness.N(uint64(n)), methodName(method),
			ms(total), ms(st.ScanSort), ms(st.Insert), ms(st.SideFile),
			fmt.Sprintf("%.1f", rec.AllocsPerRow),
			fmt.Sprintf("%.0f", rec.BytesPerRow),
			fmt.Sprintf("%.0fk", rec.RowsPerS/1000),
		})
		if err := db.DropIndex("by_key"); err != nil {
			return nil, fmt.Errorf("diskbench drop after %s: %w", method, err)
		}
	}
	printDiskTable(cfg, rows)
	return recs, nil
}

func printDiskTable(cfg Config, rows [][]string) {
	cfg.printf("%s\n", harness.Table(
		"On-disk (OSFS) build matrix",
		[]string{"rows", "method", "total ms", "scan+sort ms", "insert ms", "side ms", "allocs/row", "bytes/row", "rows/s"},
		rows))
}
