package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"onlineindex/internal/catalog"
	"onlineindex/internal/core"
	"onlineindex/internal/engine"
	"onlineindex/internal/harness"
	"onlineindex/internal/keyenc"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
	"onlineindex/internal/workload"
)

// ReadCell is one read-mode measurement of the readbench matrix.
type ReadCell struct {
	Mode        string  `json:"mode"` // point_hash | point_tree | range | seqscan
	DuringBuild bool    `json:"during_build"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

// ReadRecord is the machine-readable read-path measurement appended to
// BENCH_build.json by `benchtab -readbench`: point lookups through the hash
// fast path and through the raw B+-tree (cache disabled), 200-entry ordered
// range scans, and zone-map-pruned sequential scans — each measured on a
// quiescent table and again while a live SF index build runs over the same
// table, which is the paper's no-quiesce claim seen from the reader's side.
type ReadRecord struct {
	Kind    string     `json:"kind"` // "readbench"
	NumCPU  int        `json:"num_cpu"`
	Rows    int        `json:"rows"`
	Readers int        `json:"readers"`
	Trials  int        `json:"trials"`
	Builds  int        `json:"sf_builds_completed"` // SF builds finished during the live-build window
	Results []ReadCell `json:"results"`
}

// readBatch amortizes transaction begin/rollback across this many lookups
// per measured op, so the measurement weighs the lookup itself.
const readBatch = 64

// hotKeys is the point-lookup working set; it sits well under the cache's
// default capacity so the steady state is all-hit.
const hotKeys = 1024

// NewReadGateDBs opens two identically populated engines — hash fast path
// enabled and disabled — each with the complete by_key index the point
// lookups use. The pair is the readbench's (and the read gate's) subject.
func NewReadGateDBs(rows int) (hash, tree *engine.DB, err error) {
	if hash, err = newReadDB(rows, false); err != nil {
		return nil, nil, err
	}
	if tree, err = newReadDB(rows, true); err != nil {
		return nil, nil, err
	}
	return hash, tree, nil
}

func newReadDB(rows int, disableCache bool) (*engine.DB, error) {
	db, err := engine.Open(engine.Config{FS: vfs.NewMemFS(), PoolSize: 4096,
		DisableReadCache: disableCache})
	if err != nil {
		return nil, err
	}
	if _, err := db.CreateTable("orders", workload.Schema()); err != nil {
		return nil, err
	}
	if _, err := workload.Populate(db, "orders", rows, 16); err != nil {
		return nil, err
	}
	if _, err := core.Build(db, engine.CreateIndexSpec{
		Name: "by_key", Table: "orders", Columns: []string{"key"}, Method: catalog.MethodOffline,
	}, core.Options{}); err != nil {
		return nil, err
	}
	return db, nil
}

// MeasurePointLookup measures all-hit point-lookup throughput on the by_key
// index over the hot key set: each measured op is one transaction doing
// readBatch lookups. Returns individual lookups per second.
func MeasurePointLookup(db *engine.DB, goroutines int, dur time.Duration) (float64, error) {
	ops, err := concurrentOpsPerSec(goroutines, dur, func(g, i int) error {
		tx := db.Begin()
		defer tx.Rollback() //nolint:errcheck
		for j := 0; j < readBatch; j++ {
			id := int64((i*readBatch + j*7 + g*13) % hotKeys)
			rids, err := db.IndexLookup(tx, "by_key", keyenc.String(workload.KeyOf(id)))
			if err != nil {
				return err
			}
			if len(rids) != 1 {
				return fmt.Errorf("readbench: lookup id %d returned %d rids", id, len(rids))
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return ops * readBatch, nil
}

// measureRangeScan measures 200-entry ordered index scans per second from
// rotating start positions of the by_key index.
func measureRangeScan(db *engine.DB, rows, goroutines int, dur time.Duration) (float64, error) {
	return concurrentOpsPerSec(goroutines, dur, func(g, i int) error {
		tx := db.Begin()
		defer tx.Rollback() //nolint:errcheck
		lo := []keyenc.Value{keyenc.String(workload.KeyOf(int64((i*37 + g*11) % rows)))}
		n := 0
		return db.IndexScan(tx, "by_key", lo, nil, func(_ []byte, _ types.RID) bool {
			n++
			return n < 200
		})
	})
}

// measureSeqScan measures predicate-pushdown sequential scans per second: a
// narrow id-range predicate over a table whose insert order correlates with
// page order, so zone maps prune almost every block once their summaries
// have been rebuilt by earlier passes.
func measureSeqScan(db *engine.DB, rows, goroutines int, dur time.Duration) (float64, error) {
	return concurrentOpsPerSec(goroutines, dur, func(g, i int) error {
		tx := db.Begin()
		defer tx.Rollback() //nolint:errcheck
		base := int64((i*211 + g*401) % rows)
		lo, hi := keyenc.Int64(base), keyenc.Int64(base+200)
		return db.SeqScan(tx, "orders", &engine.Predicate{Col: 0, Lo: &lo, Hi: &hi},
			func(_ types.RID, _ engine.Row) bool { return true })
	})
}

// ReadBench runs the read-path throughput matrix — quiescent, then with a
// live SF build looping on the same table — and returns the
// BENCH_build.json record.
func ReadBench(cfg Config, rows int) (ReadRecord, error) {
	const (
		readers = 4
		trials  = 3
		dur     = 120 * time.Millisecond
	)
	rec := ReadRecord{
		Kind: "readbench", NumCPU: runtime.NumCPU(), Rows: rows,
		Readers: readers, Trials: trials,
	}
	dbHash, dbTree, err := NewReadGateDBs(rows)
	if err != nil {
		return rec, err
	}
	defer dbHash.Close() //nolint:errcheck
	defer dbTree.Close() //nolint:errcheck

	type probe struct {
		mode    string
		measure func() (float64, error)
	}
	quiescent := []probe{
		{"point_hash", func() (float64, error) { return MeasurePointLookup(dbHash, readers, dur) }},
		{"point_tree", func() (float64, error) { return MeasurePointLookup(dbTree, readers, dur) }},
		{"range", func() (float64, error) { return measureRangeScan(dbHash, rows, readers, dur) }},
		{"seqscan", func() (float64, error) { return measureSeqScan(dbHash, rows, readers, dur) }},
	}
	bestOf := func(probes []probe, during bool) error {
		cells := make([]ReadCell, len(probes))
		for i, p := range probes {
			cells[i] = ReadCell{Mode: p.mode, DuringBuild: during}
		}
		for t := 0; t < trials; t++ {
			for i, p := range probes {
				v, err := p.measure()
				if err != nil {
					return fmt.Errorf("readbench %s (during_build=%v): %w", p.mode, during, err)
				}
				if v > cells[i].OpsPerSec {
					cells[i].OpsPerSec = v
				}
			}
		}
		rec.Results = append(rec.Results, cells...)
		return nil
	}
	if err := bestOf(quiescent, false); err != nil {
		return rec, err
	}

	// The live-build window: an SF build of by_id loops (build, drop,
	// rebuild) on dbHash until the measurements finish, so a build's scan,
	// sort, load and side-file phases all overlap the reads.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var buildErr error
	var builds int
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("by_id_%d", n)
			if _, err := core.Build(dbHash, engine.CreateIndexSpec{
				Name: name, Table: "orders", Columns: []string{"id"}, Method: catalog.MethodSF,
			}, cfg.buildOptions()); err != nil {
				buildErr = err
				return
			}
			builds++
			if err := dbHash.DropIndex(name); err != nil {
				buildErr = err
				return
			}
		}
	}()
	during := []probe{
		{"point_hash", func() (float64, error) { return MeasurePointLookup(dbHash, readers, dur) }},
		{"range", func() (float64, error) { return measureRangeScan(dbHash, rows, readers, dur) }},
		{"seqscan", func() (float64, error) { return measureSeqScan(dbHash, rows, readers, dur) }},
	}
	err = bestOf(during, true)
	close(stop)
	wg.Wait()
	if err != nil {
		return rec, err
	}
	if buildErr != nil {
		return rec, fmt.Errorf("readbench: concurrent SF build: %w", buildErr)
	}
	rec.Builds = builds

	rows2 := make([][]string, len(rec.Results))
	for i, c := range rec.Results {
		rows2[i] = []string{c.Mode, fmt.Sprintf("%v", c.DuringBuild), fmt.Sprintf("%.0f", c.OpsPerSec)}
	}
	cfg.printf("%s\n", harness.Table(
		fmt.Sprintf("Read path, %d readers on %d CPUs over %d rows (ops/s, best of %d; %d SF builds completed in the live window)",
			readers, rec.NumCPU, rows, trials, builds),
		[]string{"mode", "during build", "ops/s"},
		rows2))
	return rec, nil
}
