package experiments

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"onlineindex/internal/buffer"
	"onlineindex/internal/harness"
	"onlineindex/internal/lock"
	"onlineindex/internal/page"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
	"onlineindex/internal/wal"
)

// benchPage is a minimal page type for the buffer-fetch contention
// microbenchmark: the common header plus a filler word.
type benchPage struct {
	page.Header
	filler uint64
}

const benchPageKind page.Kind = 201

func init() {
	page.Register(benchPageKind, func() page.Page { return &benchPage{} })
}

func (b *benchPage) Kind() page.Kind { return benchPageKind }

func (b *benchPage) MarshalPage() ([]byte, error) {
	img := make([]byte, page.Size)
	b.MarshalHeader(img, benchPageKind)
	binary.LittleEndian.PutUint64(img[page.HeaderSize:], b.filler)
	return img, nil
}

func (b *benchPage) UnmarshalPage(img []byte) error {
	if _, err := b.UnmarshalHeader(img); err != nil {
		return err
	}
	b.filler = binary.LittleEndian.Uint64(img[page.HeaderSize:])
	return nil
}

// ConcCell is one shards×stripes configuration of the contention
// microbenchmark: operations per second per subsystem, best of the
// interleaved trials.
type ConcCell struct {
	Shards       int     `json:"buffer_shards"`
	Stripes      int     `json:"lock_stripes"`
	FetchPerSec  float64 `json:"buffer_fetches_per_sec"`
	LockPerSec   float64 `json:"lock_acquires_per_sec"`
	AppendPerSec float64 `json:"wal_appends_per_sec"`
}

// ConcRecord is the machine-readable contention measurement appended to
// BENCH_build.json by `benchtab -concbench`. Each cell hammers the three
// refactored singletons in isolation from goroutine fan-out: all-hit buffer
// fetch/unpin over a cached working set (pure page-table contention),
// conflict-free record lock/unlock pairs (pure bucket-map contention), and
// small-record WAL appends with no forcing (pure LSN-reservation
// contention). The WAL has no shard knob — its append path is the same
// lock-free reserve-then-copy in every cell — so its column should be flat
// across the matrix; it rides along as the control.
type ConcRecord struct {
	Kind       string     `json:"kind"` // "concbench"
	NumCPU     int        `json:"num_cpu"`
	Goroutines int        `json:"goroutines"`
	Trials     int        `json:"trials"`
	Results    []ConcCell `json:"results"`
}

// concBenchDur is the per-trial measurement window. Short, because every
// (cell, subsystem) pair runs once per trial and the trials interleave.
const concBenchDur = 50 * time.Millisecond

// concurrentOpsPerSec fans work out over goroutines for roughly dur: each
// goroutine repeatedly calls op with a per-goroutine iteration counter.
// Returns total ops per second.
func concurrentOpsPerSec(goroutines int, dur time.Duration, op func(g, i int) error) (float64, error) {
	var stop atomic.Bool
	counts := make([]int64, goroutines)
	errs := make([]error, goroutines)
	var ready, done sync.WaitGroup
	start := make(chan struct{})
	ready.Add(goroutines)
	done.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer done.Done()
			ready.Done()
			<-start
			for i := 0; !stop.Load(); i++ {
				if err := op(g, i); err != nil {
					errs[g] = err
					return
				}
				counts[g]++
			}
		}(g)
	}
	ready.Wait()
	begin := time.Now()
	close(start)
	time.Sleep(dur)
	stop.Store(true)
	done.Wait()
	elapsed := time.Since(begin)
	var total int64
	for g := range counts {
		if errs[g] != nil {
			return 0, errs[g]
		}
		total += counts[g]
	}
	return float64(total) / elapsed.Seconds(), nil
}

// MeasureBufferFetch measures all-hit Fetch/Unpin throughput on a pool with
// the given shard count: the working set (64 pages) is far under the pool
// capacity, so no I/O and no eviction happen inside the window and the
// measurement isolates page-table lookup contention.
func MeasureBufferFetch(shards, goroutines int, dur time.Duration) (float64, error) {
	const pages = 64
	pool := buffer.NewSharded(vfs.NewMemFS(), nil, 4*pages, shards)
	ids := make([]types.PageID, pages)
	for i := range ids {
		fr, err := pool.NewPage(1, &benchPage{filler: uint64(i)})
		if err != nil {
			return 0, err
		}
		ids[i] = fr.ID
		pool.Unpin(fr)
	}
	defer pool.Close()
	return concurrentOpsPerSec(goroutines, dur, func(g, i int) error {
		fr, err := pool.Fetch(ids[(i*7+g*13)%pages])
		if err != nil {
			return err
		}
		pool.Unpin(fr)
		return nil
	})
}

// MeasureLockAcquire measures conflict-free Lock(S)/Unlock pair throughput
// on a manager with the given stripe count: each goroutine cycles over its
// own record names, so no request ever blocks and the measurement isolates
// bucket-map latch contention.
func MeasureLockAcquire(stripes, goroutines int, dur time.Duration) (float64, error) {
	m := lock.NewManagerStriped(stripes)
	const namesPer = 64
	return concurrentOpsPerSec(goroutines, dur, func(g, i int) error {
		rid := types.RID{
			PageID: types.PageID{File: types.FileID(g + 1), Page: types.PageNum(i % namesPer)},
			Slot:   types.SlotNum(g),
		}
		name := lock.RecordName(rid)
		txn := types.TxnID(g + 1)
		if err := m.Lock(txn, name, lock.S); err != nil {
			return err
		}
		m.Unlock(txn, name)
		return nil
	})
}

// MeasureWALAppend measures small-record Append throughput with no forcing:
// pure LSN-reservation contention on the lock-free reserve-then-copy path.
func MeasureWALAppend(goroutines int, dur time.Duration) (float64, error) {
	log, err := wal.Open(vfs.NewMemFS())
	if err != nil {
		return 0, err
	}
	defer log.Close()
	var payload [24]byte
	return concurrentOpsPerSec(goroutines, dur, func(g, i int) error {
		r := wal.Record{Type: wal.TypeHeapInsert, TxnID: types.TxnID(g + 1), Flags: wal.FlagRedo, Payload: payload[:]}
		_, err := log.Append(&r)
		return err
	})
}

// ConcBench runs the shards×stripes contention matrix at 8 goroutines,
// best-of-5 with the trials interleaved across cells so every configuration
// sees the same machine drift, and returns the BENCH_build.json record.
func ConcBench(cfg Config) (ConcRecord, error) {
	const (
		goroutines = 8
		trials     = 5
	)
	configs := []struct{ shards, stripes int }{
		{1, 1}, {2, 2}, {4, 4}, {8, 8}, {16, 16},
	}
	rec := ConcRecord{
		Kind:       "concbench",
		NumCPU:     runtime.NumCPU(),
		Goroutines: goroutines,
		Trials:     trials,
	}
	for _, c := range configs {
		rec.Results = append(rec.Results, ConcCell{Shards: c.shards, Stripes: c.stripes})
	}
	for t := 0; t < trials; t++ {
		for i, c := range configs {
			cell := &rec.Results[i]
			fetch, err := MeasureBufferFetch(c.shards, goroutines, concBenchDur)
			if err != nil {
				return rec, fmt.Errorf("concbench shards=%d fetch: %w", c.shards, err)
			}
			locks, err := MeasureLockAcquire(c.stripes, goroutines, concBenchDur)
			if err != nil {
				return rec, fmt.Errorf("concbench stripes=%d lock: %w", c.stripes, err)
			}
			appends, err := MeasureWALAppend(goroutines, concBenchDur)
			if err != nil {
				return rec, fmt.Errorf("concbench wal append: %w", err)
			}
			if fetch > cell.FetchPerSec {
				cell.FetchPerSec = fetch
			}
			if locks > cell.LockPerSec {
				cell.LockPerSec = locks
			}
			if appends > cell.AppendPerSec {
				cell.AppendPerSec = appends
			}
		}
	}
	rows := make([][]string, len(rec.Results))
	for i, c := range rec.Results {
		rows[i] = []string{
			fmt.Sprintf("%d", c.Shards), fmt.Sprintf("%d", c.Stripes),
			fmt.Sprintf("%.0f", c.FetchPerSec), fmt.Sprintf("%.0f", c.LockPerSec),
			fmt.Sprintf("%.0f", c.AppendPerSec),
		}
	}
	cfg.printf("%s\n", harness.Table(
		fmt.Sprintf("Singleton contention, %d goroutines on %d CPUs (ops/s, best of %d)",
			goroutines, rec.NumCPU, trials),
		[]string{"shards", "stripes", "buffer fetch/s", "lock pair/s", "wal append/s"},
		rows))
	return rec, nil
}
