package experiments

import (
	"fmt"
	"time"

	"onlineindex/internal/catalog"
	"onlineindex/internal/core"
	"onlineindex/internal/engine"
	"onlineindex/internal/harness"
	"onlineindex/internal/vfs"
	"onlineindex/internal/wal"
	"onlineindex/internal/workload"
)

// CommitSyncLatency is the simulated fsync cost the commit-throughput
// measurements run under. MemFS syncs are otherwise free, which would hide
// exactly the barrier group commit amortizes; 400µs is a mid-range SSD
// flush. The group/serial ratio is nearly latency-invariant — both modes'
// throughput is meanBatch/latency, so the ratio is the batch ratio — but the
// absolute numbers only mean something with a realistic barrier charged.
const CommitSyncLatency = 400 * time.Microsecond

// commitMix is the insert-only workload the commit-throughput measurements
// drive: every transaction inserts one fresh row and commits, the same load
// BenchmarkCommitThroughput applies, so `benchtab -commitbench` numbers and
// the benchmark agree. Deletes/updates would add row-lock conflicts and
// rollbacks that cap how many commits overlap a flush, diluting the very
// batching under test.
var commitMix = workload.Mix{InsertPct: 100}

// CommitRecord is the machine-readable commit-throughput measurement
// appended to BENCH_build.json by `benchtab -commitbench`. Throughputs are
// committed transactions per second from insert-commit writers against the
// orders table (the BenchmarkCommitThroughput load). The 1w/4w/16w fields
// run on a quiet table; the *_live fields repeat the 16-writer pair while an
// SF index build of the same table loops concurrently — the paper's
// scenario. The live pair is context, not the gate: a concurrent build adds
// page-latch and buffer-pool contention that throttles group and serial
// alike, so it understates the fsync convoy the quiet pair isolates.
type CommitRecord struct {
	Kind        string  `json:"kind"` // "commit_tps"
	Rows        int     `json:"rows"`
	SyncUs      float64 `json:"sync_latency_us"`
	CommitTPS1W float64 `json:"commit_tps_1w"`
	CommitTPS4W float64 `json:"commit_tps_4w"`
	// CommitTPS16W and the serial baseline at the same width are the
	// headline pair: the acceptance gate requires group/serial >= 3x.
	CommitTPS16W       float64 `json:"commit_tps_16w"`
	CommitTPSSerial16W float64 `json:"commit_tps_serial_16w"`
	Speedup16W         float64 `json:"group_commit_speedup_16w"`
	MeanBatch          float64 `json:"group_commit_mean_batch"`
	// 16-writer pair with a live SF build of the same table running.
	CommitTPS16WLive       float64 `json:"commit_tps_16w_live_build"`
	CommitTPSSerial16WLive float64 `json:"commit_tps_serial_16w_live_build"`
}

// MeasureCommitTPS runs `workers` insert-commit writers against a populated
// orders table for roughly dur and returns committed transactions per
// second plus the mean commits-per-WAL-flush. serial selects the
// pre-group-commit serial-Force baseline. When liveBuild is set, an SF
// build of an index on the table runs concurrently, started just before the
// measurement window (the build restarts as needed to span it). The MemFS
// charges CommitSyncLatency per WAL fsync.
func MeasureCommitTPS(rows, workers int, serial, liveBuild bool, dur time.Duration) (float64, float64, error) {
	fs := vfs.NewMemFS()
	db, err := engine.Open(engine.Config{FS: fs, PoolSize: 4096, SerialCommitForce: serial})
	if err != nil {
		return 0, 0, err
	}
	if _, err := db.CreateTable(tableName, workload.Schema()); err != nil {
		return 0, 0, err
	}
	rids, err := workload.Populate(db, tableName, rows, 24)
	if err != nil {
		return 0, 0, err
	}
	// Populate runs sync-latency-free so short calibration runs stay short.
	// The charge is scoped to the WAL file: commit fsync is the barrier under
	// test, and a concurrent build's spill/page Syncs (some issued under the
	// buffer-pool mutex) would otherwise become a shared per-Sync bottleneck
	// that throttles both modes identically and hides the convoy.
	fs.SetSyncLatency(CommitSyncLatency, wal.LogFileName)

	buildDone := make(chan error, 1)
	buildStop := make(chan struct{})
	if liveBuild {
		go func() {
			i := 0
			for {
				select {
				case <-buildStop:
					buildDone <- nil
					return
				default:
				}
				sp := spec(fmt.Sprintf("commitbench_%d", i), catalog.MethodSF)
				if _, err := core.Build(db, sp, core.Options{}); err != nil {
					buildDone <- err
					return
				}
				if err := db.DropIndex(sp.Name); err != nil {
					buildDone <- err
					return
				}
				i++
			}
		}()
	} else {
		close(buildStop)
		buildDone <- nil
	}

	runner := workload.NewRunner(db, tableName, rids, workers, commitMix)
	runner.Start()
	time.Sleep(dur)
	st := runner.Stop()
	if liveBuild {
		close(buildStop)
	}
	if err := <-buildDone; err != nil {
		return 0, 0, err
	}
	if errs := runner.Errs(); len(errs) > 0 {
		return 0, 0, fmt.Errorf("commitbench workload: %v", errs[0])
	}

	meanBatch := 0.0
	wst := db.Log().Stats()
	if wst.Forces > 0 {
		meanBatch = float64(st.Commits) / float64(wst.Forces)
	}
	return st.Throughput(), meanBatch, nil
}

// CommitBench measures multi-writer commit throughput at 1, 4 and 16
// writers on the group-commit path plus the 16-writer serial-Force baseline
// on a quiet table, repeats the 16-writer pair during a live SF build, and
// returns the BENCH_build.json record.
func CommitBench(cfg Config) (CommitRecord, error) {
	rows := cfg.rows(20_000)
	const dur = 600 * time.Millisecond
	rec := CommitRecord{
		Kind:   "commit_tps",
		Rows:   rows,
		SyncUs: float64(CommitSyncLatency) / float64(time.Microsecond),
	}
	for _, m := range []struct {
		workers int
		serial  bool
		live    bool
		tps     *float64
	}{
		{1, false, false, &rec.CommitTPS1W},
		{4, false, false, &rec.CommitTPS4W},
		{16, false, false, &rec.CommitTPS16W},
		{16, true, false, &rec.CommitTPSSerial16W},
		{16, false, true, &rec.CommitTPS16WLive},
		{16, true, true, &rec.CommitTPSSerial16WLive},
	} {
		tps, batch, err := MeasureCommitTPS(rows, m.workers, m.serial, m.live, dur)
		if err != nil {
			return rec, fmt.Errorf("commitbench workers=%d serial=%v live=%v: %w",
				m.workers, m.serial, m.live, err)
		}
		*m.tps = tps
		if m.workers == 16 && !m.serial && !m.live {
			rec.MeanBatch = batch
		}
	}
	if rec.CommitTPSSerial16W > 0 {
		rec.Speedup16W = rec.CommitTPS16W / rec.CommitTPSSerial16W
	}
	cfg.printf("%s\n", harness.Table(
		"Commit throughput, insert-commit writers (group commit vs serial Force)",
		[]string{"writers", "mode", "build", "commits/s"},
		[][]string{
			{"1", "group", "quiet", fmt.Sprintf("%.0f", rec.CommitTPS1W)},
			{"4", "group", "quiet", fmt.Sprintf("%.0f", rec.CommitTPS4W)},
			{"16", "group", "quiet", fmt.Sprintf("%.0f (mean batch %.1f)", rec.CommitTPS16W, rec.MeanBatch)},
			{"16", "serial", "quiet", fmt.Sprintf("%.0f (group speedup %.1fx)",
				rec.CommitTPSSerial16W, rec.Speedup16W)},
			{"16", "group", "live SF", fmt.Sprintf("%.0f", rec.CommitTPS16WLive)},
			{"16", "serial", "live SF", fmt.Sprintf("%.0f", rec.CommitTPSSerial16WLive)},
		}))
	return rec, nil
}
