package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"onlineindex/internal/catalog"
	"onlineindex/internal/core"
	"onlineindex/internal/engine"
	"onlineindex/internal/extsort"
	"onlineindex/internal/harness"
	"onlineindex/internal/vfs"
	"onlineindex/internal/wal"
	"onlineindex/internal/workload"
)

// E4Clustering measures index clustering (fraction of ascending
// leaf-page transitions) for each method under growing concurrent update
// activity.
//
// Paper claim (§4): "it is expected that the index built by SF would be more
// clustered ... than the one built by NSF. Deviations from the perfect
// clustering achievable without concurrent updates would be a function of
// the transactions' key insert and delete activities during the time of
// index build. These deviations need to be quantified for both algorithms."
// This experiment is that quantification.
func E4Clustering(cfg Config) error {
	n := cfg.rows(25_000)
	var rows [][]string
	for _, workers := range []int{0, 1, 2, 4, 8} {
		for _, method := range []catalog.BuildMethod{catalog.MethodNSF, catalog.MethodSF} {
			db, rids, err := setup(n)
			if err != nil {
				return err
			}
			var runner *workload.Runner
			if workers > 0 {
				// Saturating (unpaced) workers: the paper's deviation claim
				// is about heavy concurrent activity.
				runner = workload.NewRunner(db, tableName, rids, workers, workload.DefaultMix)
				runner.Start()
			}
			res, err := core.Build(db, spec("by_key", method), core.Options{})
			if err != nil {
				return err
			}
			var wst workload.Stats
			if runner != nil {
				wst = runner.Stop()
				if errs := runner.Errs(); len(errs) > 0 {
					return fmt.Errorf("E4: workload error: %v", errs[0])
				}
			}
			if err := db.CheckIndexConsistency("by_key"); err != nil {
				return fmt.Errorf("E4 %s w=%d: %w", method, workers, err)
			}
			cl, err := harness.IndexClustering(db, "by_key")
			if err != nil {
				return err
			}
			pages, _ := harness.IndexPages(db, "by_key")
			rows = append(rows, []string{
				fmt.Sprintf("%d", workers), methodName(method),
				fmt.Sprintf("%.3f", cl),
				fmt.Sprintf("%d", pages),
				harness.N(wst.Commits),
				harness.N(res.Stats.SideFileLen),
			})
		}
	}
	cfg.printf("%s\n", harness.Table(
		"E4  Clustering factor vs concurrent update workers (1.0 = perfectly sequential leaves)",
		[]string{"updaters", "method", "clustering", "index pages", "txns during build", "side-file entries"},
		rows))
	return nil
}

// E5LogBytes measures the log volume each build method generates, split by
// record type, including the NSF multi-key ablation.
//
// Paper claims (§4): "no log records are written by IB [in SF] for inserting
// keys until side-file processing begins. In NSF, log records are written
// for all key inserts by IB. NSF reduces this overhead by logging all the
// keys inserted on a particular index page using a single log record."
func E5LogBytes(cfg Config) error {
	n := cfg.rows(30_000)
	type variant struct {
		label  string
		method catalog.BuildMethod
		batch  int
	}
	variants := []variant{
		{"offline", catalog.MethodOffline, 0},
		{"NSF multi-key (batch 64)", catalog.MethodNSF, 64},
		{"NSF per-key (batch 1)", catalog.MethodNSF, 1},
		{"SF", catalog.MethodSF, 0},
	}
	var rows [][]string
	for _, v := range variants {
		db, _, err := setup(n)
		if err != nil {
			return err
		}
		before := db.Log().Stats()
		if _, err := core.Build(db, spec("by_key", v.method), core.Options{BatchSize: v.batch}); err != nil {
			return err
		}
		d := db.Log().Stats().Delta(before)
		idxIns := d.TypeStat(wal.TypeIdxInsert)
		multi := d.TypeStat(wal.TypeIdxMultiInsert)
		splits := d.TypeStat(wal.TypeIdxSplit)
		rows = append(rows, []string{
			v.label,
			harness.N(d.Records), harness.N(d.Bytes),
			harness.N(multi.Records), harness.N(multi.Bytes),
			harness.N(idxIns.Records),
			harness.N(splits.Records),
		})
	}
	cfg.printf("%s\n", harness.Table(
		"E5  Log volume of the whole build, quiet table",
		[]string{"variant", "records", "bytes", "multi-ins recs", "multi-ins bytes", "idx-ins recs", "split recs"},
		rows))
	return nil
}

// E6BuildRestart crashes the system midway through a build and compares the
// work re-done after resume across checkpoint intervals (none = restart the
// phases from their beginnings).
//
// Paper claim (§1.3): "techniques for making the index-build operation
// restartable, without loss of all work, in case a system failure were to
// interrupt the completion of the creation of the index."
func E6BuildRestart(cfg Config) error {
	n := cfg.rows(20_000)
	var rows [][]string
	for _, method := range []catalog.BuildMethod{catalog.MethodNSF, catalog.MethodSF} {
		// Calibration: time one uninterrupted build of the same size so the
		// crash can be aimed at its halfway point (log-volume aiming would
		// not work: SF writes almost no log until side-file processing).
		calDB, _, err := setup(n)
		if err != nil {
			return err
		}
		calStart := time.Now()
		if _, err := core.Build(calDB, spec("by_key", method), core.Options{}); err != nil {
			return err
		}
		buildDur := time.Since(calStart)

		for _, ckpt := range []int{0, 5000, 1000} {
			opts := core.Options{CheckpointPages: ckptPages(ckpt), CheckpointKeys: ckpt}
			var db *engine.DB
			var fs *vfs.MemFS
			// A 50%-of-calibrated-duration crash can occasionally land after
			// the build completed (scheduling noise); retry such landings.
			for attempt := 0; attempt < 5; attempt++ {
				var err error
				db, _, err = setup(n)
				if err != nil {
					return err
				}
				fs = db.FS().(*vfs.MemFS)
				done := make(chan error, 1)
				go func() {
					defer func() { recover() }()
					_, err := core.Build(db, spec("by_key", method), opts)
					done <- err
				}()
				time.Sleep(buildDur / 2)
				db.Crash()
				<-done
				if ix, ok := db.Catalog().Index("by_key"); !ok || ix.State != catalog.StateComplete {
					break // the crash interrupted the build, as intended
				}
			}

			restartStart := time.Now()
			db2, err := engine.Recover(engine.Config{FS: fs, PoolSize: 4096})
			if err != nil {
				return err
			}
			pending, err := db2.PendingBuilds()
			if err != nil {
				return err
			}
			var reExtracted, reInserted uint64
			var resumeDur time.Duration
			ix, haveIx := db2.Catalog().Index("by_key")
			switch {
			case len(pending) == 1:
				res, err := core.Resume(db2, pending[0], opts)
				if err != nil {
					return err
				}
				resumeDur = time.Since(restartStart)
				reExtracted = res.Stats.KeysExtracted
				reInserted = res.Stats.KeysInserted
			case haveIx && ix.State == catalog.StateComplete:
				// The crash landed after completion (possible at small
				// scales): nothing to redo.
				resumeDur = time.Since(restartStart)
			default:
				// Crash landed before the descriptor commit; full rebuild.
				res, err := core.Build(db2, spec("by_key", method), opts)
				if err != nil {
					return err
				}
				resumeDur = time.Since(restartStart)
				reExtracted = res.Stats.KeysExtracted
				reInserted = res.Stats.KeysInserted
			}
			if err := db2.CheckIndexConsistency("by_key"); err != nil {
				return fmt.Errorf("E6 %s ckpt=%d: %w", method, ckpt, err)
			}
			label := "none"
			if ckpt > 0 {
				label = harness.N(uint64(ckpt)) + " keys"
			}
			rows = append(rows, []string{
				methodName(method), label,
				harness.N(reExtracted),
				harness.N(reInserted),
				ms(resumeDur),
			})
		}
	}
	cfg.printf("%s\n", harness.Table(
		fmt.Sprintf("E6  Crash at ~50%% of a %s-row build: work re-done after restart", harness.N(uint64(n))),
		[]string{"method", "checkpoint every", "keys re-extracted", "keys re-inserted", "recover+resume ms"},
		rows))
	return nil
}

func ckptPages(keys int) int {
	if keys == 0 {
		return 0
	}
	return 8
}

// E7SortRestart exercises the restartable sort in isolation: crash during
// the sort phase and during the merge phase, with and without checkpoints,
// and measure how much input must be re-read.
//
// Paper claim (§5): the sort and merge phases resume from their checkpoints
// with no key lost or duplicated.
func E7SortRestart(cfg Config) error {
	n := cfg.rows(200_000)
	items := make([][]byte, n)
	perm := rand.New(rand.NewSource(99)).Perm(n)
	for i, p := range perm {
		items[i] = []byte(fmt.Sprintf("key-%09d", p))
	}

	var rows [][]string
	for _, every := range []int{0, 50_000, 10_000} {
		fs := vfs.NewMemFS()
		s := extsort.NewSorter(fs, "e7", 2048)
		var st extsort.SortState
		haveCkpt := false
		crashAt := n / 2
		for i := 0; i < crashAt; i++ {
			if err := s.Add(items[i]); err != nil {
				return err
			}
			if every > 0 && (i+1)%every == 0 {
				cs, err := s.Checkpoint([]byte(fmt.Sprintf("%d", i+1)))
				if err != nil {
					return err
				}
				st, haveCkpt = cs, true
			}
		}
		fs.Crash()
		fs.Recover()

		resumeFrom := 0
		var s2 *extsort.Sorter
		if haveCkpt {
			var scanPos []byte
			var err error
			s2, scanPos, err = extsort.ResumeSorterWithCapacity(fs, st, 2048)
			if err != nil {
				return err
			}
			fmt.Sscanf(string(scanPos), "%d", &resumeFrom)
		} else {
			// No checkpoint: all pre-crash work is lost; restart from zero.
			s2 = extsort.NewSorter(fs, "e7b", 2048)
		}
		reRead := n - resumeFrom
		for i := resumeFrom; i < n; i++ {
			if err := s2.Add(items[i]); err != nil {
				return err
			}
		}
		runs, err := s2.Finish()
		if err != nil {
			return err
		}
		m, err := extsort.NewMerger(fs, runs, nil)
		if err != nil {
			return err
		}
		count := 0
		var prev []byte
		for {
			it, _, ok, err := m.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if prev != nil && bytes.Compare(prev, it) > 0 {
				return fmt.Errorf("E7: output not sorted")
			}
			prev = it
			count++
		}
		m.Close()
		if count != n {
			return fmt.Errorf("E7: output has %d items, want %d (lost or duplicated)", count, n)
		}
		label := "none (restart from scratch)"
		if every > 0 {
			label = harness.N(uint64(every)) + " items"
		}
		rows = append(rows, []string{
			label,
			harness.N(uint64(crashAt)),
			harness.N(uint64(reRead)),
			fmt.Sprintf("%.0f%%", 100*float64(reRead-(n-crashAt))/float64(crashAt)),
			fmt.Sprintf("%d", len(runs)),
		})
	}
	cfg.printf("%s\n", harness.Table(
		fmt.Sprintf("E7  Restartable sort: crash at %s of %s items (sort phase)", harness.N(uint64(n/2)), harness.N(uint64(n))),
		[]string{"checkpoint every", "done at crash", "items re-added", "pre-crash work lost", "runs"},
		rows))
	return nil
}
