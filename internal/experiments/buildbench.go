package experiments

import (
	"fmt"
	"runtime"
	"time"

	"onlineindex/internal/catalog"
	"onlineindex/internal/core"
	"onlineindex/internal/harness"
)

// BuildRecord is one machine-readable build measurement, written by
// `benchtab -buildbench` to BENCH_build.json so worker-scaling runs can be
// diffed across commits without parsing tables.
type BuildRecord struct {
	Rows     int     `json:"rows"`
	Method   string  `json:"method"`
	Workers  int     `json:"workers"`
	TotalMs  float64 `json:"total_ms"`
	ScanMs   float64 `json:"scan_sort_ms"`
	InsertMs float64 `json:"insert_ms"`
	SideMs   float64 `json:"side_file_ms"`
	Runs     int     `json:"runs"`
	// Staged-pipeline counters (prefetch and feed-wait stay zero for
	// workers=1 serial scans, which have no prefetch depth).
	PagesPrefetched uint64  `json:"pages_prefetched"`
	ExtractBusyMs   float64 `json:"extract_busy_ms"`
	FeedWaitMs      float64 `json:"feed_wait_ms"`
	// MetricsOffMs is the same build's wall-clock with Config.DisableMetrics
	// set (no registry, no progress tracker), and MetricsOverheadPct the
	// relative cost of the instrumentation: (TotalMs - MetricsOffMs) /
	// MetricsOffMs * 100. The observability budget is < 2%.
	MetricsOffMs       float64 `json:"metrics_off_total_ms"`
	MetricsOverheadPct float64 `json:"metrics_overhead_pct"`
}

func msf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// BuildBench builds an index on a quiet n-row table with each method at each
// worker count, on identically populated tables, and returns one record per
// (method, workers) pair. It verifies every built index before recording.
func BuildBench(cfg Config, n int, workerCounts []int) ([]BuildRecord, error) {
	// Each (config, metrics on/off) pair is measured as the best of several
	// interleaved trials: a single run is dominated by allocator and
	// page-cache warmup (the very first build of a process can cost 2x), and
	// interleaving the two configurations exposes both to the same machine
	// drift. The minimum estimates the undisturbed run, which is what the
	// instrumentation delta actually shifts.
	const trials = 5
	oneBuild := func(method catalog.BuildMethod, w int, disableMetrics bool) (*core.Result, time.Duration, error) {
		db, _, err := setupMetrics(n, disableMetrics)
		if err != nil {
			return nil, 0, err
		}
		// Collect the populate garbage outside the timed region so trials
		// don't inherit each other's allocator debt.
		runtime.GC()
		start := time.Now()
		res, err := core.Build(db, spec("by_key", method), core.Options{ScanWorkers: w})
		if err != nil {
			return nil, 0, fmt.Errorf("buildbench %s workers=%d: %w", method, w, err)
		}
		total := time.Since(start)
		if err := db.CheckIndexConsistency("by_key"); err != nil {
			return nil, 0, fmt.Errorf("buildbench %s workers=%d: %w", method, w, err)
		}
		return res, total, nil
	}
	timedPair := func(method catalog.BuildMethod, w int) (*core.Result, time.Duration, time.Duration, error) {
		var best *core.Result
		var bestOn, bestOff time.Duration
		for i := 0; i < trials; i++ {
			res, on, err := oneBuild(method, w, false)
			if err != nil {
				return nil, 0, 0, err
			}
			_, off, err := oneBuild(method, w, true)
			if err != nil {
				return nil, 0, 0, err
			}
			if best == nil || on < bestOn {
				best, bestOn = res, on
			}
			if i == 0 || off < bestOff {
				bestOff = off
			}
		}
		return best, bestOn, bestOff, nil
	}

	var recs []BuildRecord
	var rows [][]string
	for _, method := range []catalog.BuildMethod{catalog.MethodOffline, catalog.MethodNSF, catalog.MethodSF} {
		for _, w := range workerCounts {
			res, total, offTotal, err := timedPair(method, w)
			if err != nil {
				return nil, err
			}
			st := res.Stats
			rec := BuildRecord{
				Rows: n, Method: methodName(method), Workers: w,
				TotalMs: msf(total), ScanMs: msf(st.ScanSort),
				InsertMs: msf(st.Insert), SideMs: msf(st.SideFile),
				Runs:            st.Runs,
				PagesPrefetched: st.Pipeline.PagesPrefetched,
				ExtractBusyMs:   msf(st.Pipeline.ExtractBusy),
				FeedWaitMs:      msf(st.Pipeline.FeedWait),
				MetricsOffMs:    msf(offTotal),
			}
			if offTotal > 0 {
				rec.MetricsOverheadPct = (total - offTotal).Seconds() / offTotal.Seconds() * 100
			}
			recs = append(recs, rec)
			rows = append(rows, []string{
				harness.N(uint64(n)), methodName(method), fmt.Sprintf("%d", w),
				ms(st.ScanSort), ms(st.Insert), ms(st.SideFile), ms(total),
				fmt.Sprintf("%+.1f%%", rec.MetricsOverheadPct),
			})
		}
	}
	cfg.printf("%s\n", harness.Table(
		"Build wall-clock vs scan workers (quiet table)",
		[]string{"rows", "method", "workers", "scan+sort ms", "insert ms", "side-file ms", "total ms", "metrics Δ"},
		rows))
	return recs, nil
}
