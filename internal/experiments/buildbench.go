package experiments

import (
	"fmt"
	"time"

	"onlineindex/internal/catalog"
	"onlineindex/internal/core"
	"onlineindex/internal/harness"
)

// BuildRecord is one machine-readable build measurement, written by
// `benchtab -buildbench` to BENCH_build.json so worker-scaling runs can be
// diffed across commits without parsing tables.
type BuildRecord struct {
	Rows     int     `json:"rows"`
	Method   string  `json:"method"`
	Workers  int     `json:"workers"`
	TotalMs  float64 `json:"total_ms"`
	ScanMs   float64 `json:"scan_sort_ms"`
	InsertMs float64 `json:"insert_ms"`
	SideMs   float64 `json:"side_file_ms"`
	Runs     int     `json:"runs"`
	// Staged-pipeline counters (prefetch and feed-wait stay zero for
	// workers=1 serial scans, which have no prefetch depth).
	PagesPrefetched uint64  `json:"pages_prefetched"`
	ExtractBusyMs   float64 `json:"extract_busy_ms"`
	FeedWaitMs      float64 `json:"feed_wait_ms"`
}

func msf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// BuildBench builds an index on a quiet n-row table with each method at each
// worker count, on identically populated tables, and returns one record per
// (method, workers) pair. It verifies every built index before recording.
func BuildBench(cfg Config, n int, workerCounts []int) ([]BuildRecord, error) {
	var recs []BuildRecord
	var rows [][]string
	for _, method := range []catalog.BuildMethod{catalog.MethodOffline, catalog.MethodNSF, catalog.MethodSF} {
		for _, w := range workerCounts {
			db, _, err := setup(n)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			res, err := core.Build(db, spec("by_key", method), core.Options{ScanWorkers: w})
			if err != nil {
				return nil, fmt.Errorf("buildbench %s workers=%d: %w", method, w, err)
			}
			total := time.Since(start)
			if err := db.CheckIndexConsistency("by_key"); err != nil {
				return nil, fmt.Errorf("buildbench %s workers=%d: %w", method, w, err)
			}
			st := res.Stats
			recs = append(recs, BuildRecord{
				Rows: n, Method: methodName(method), Workers: w,
				TotalMs: msf(total), ScanMs: msf(st.ScanSort),
				InsertMs: msf(st.Insert), SideMs: msf(st.SideFile),
				Runs:            st.Runs,
				PagesPrefetched: st.Pipeline.PagesPrefetched,
				ExtractBusyMs:   msf(st.Pipeline.ExtractBusy),
				FeedWaitMs:      msf(st.Pipeline.FeedWait),
			})
			rows = append(rows, []string{
				harness.N(uint64(n)), methodName(method), fmt.Sprintf("%d", w),
				ms(st.ScanSort), ms(st.Insert), ms(st.SideFile), ms(total),
			})
		}
	}
	cfg.printf("%s\n", harness.Table(
		"Build wall-clock vs scan workers (quiet table)",
		[]string{"rows", "method", "workers", "scan+sort ms", "insert ms", "side-file ms", "total ms"},
		rows))
	return recs, nil
}
