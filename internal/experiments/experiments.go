// Package experiments implements the reproduction's evaluation suite. The
// paper (SIGMOD 1992) has no quantitative evaluation section — its §4
// comparison is qualitative — so each experiment here quantifies one of its
// claims; DESIGN.md maps experiment IDs to claims and EXPERIMENTS.md records
// claim-vs-measured outcomes. Everything runs on the MemFS simulated stable
// storage, so absolute times are laptop-scale while the *shape* of the
// results (who wins, by what factor) is the reproducible output.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"onlineindex/internal/catalog"
	"onlineindex/internal/core"
	"onlineindex/internal/engine"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
	"onlineindex/internal/workload"
)

// Scale trades runtime for fidelity: 1.0 is the default benchmark scale;
// smaller values shrink table sizes for quick runs. Workers sets
// core.Options.ScanWorkers for the build-time experiments (0 means the core
// default of 1), so the staged-pipeline knob is measurable end to end.
type Config struct {
	Scale   float64
	Workers int
	Out     io.Writer
}

// buildOptions returns the core build options the experiments use.
func (c Config) buildOptions() core.Options {
	return core.Options{ScanWorkers: c.Workers}
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return 1
	}
	return c.Workers
}

func (c Config) rows(n int) int {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	v := int(float64(n) * c.Scale)
	if v < 100 {
		v = 100
	}
	return v
}

func (c Config) printf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

// Experiment is one registered experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) error
}

// All returns the registered experiments in ID order.
func All() []Experiment {
	list := []Experiment{
		{"E1", "Build time and phase breakdown: offline vs NSF vs SF (§4)", E1BuildTime},
		{"E2", "Update availability during builds (§1, §4)", E2Availability},
		{"E3", "Quiesce windows: descriptor-create (NSF) vs none (SF) (§2.2.1, §3.2.1)", E3Quiesce},
		{"E4", "Index clustering vs concurrent update activity (§4)", E4Clustering},
		{"E5", "Index-builder logging overhead (§2.3.1, §4)", E5LogBytes},
		{"E6", "Crash mid-build: checkpointed restart vs from-scratch (§2.2.3, §3.2.4)", E6BuildRestart},
		{"E7", "Restartable sort: work preserved across crashes (§5)", E7SortRestart},
		{"E8", "Pseudo-deleted key garbage and GC (§2.2.4)", E8PseudoGC},
		{"E9", "Multiple indexes in one scan (§6.2)", E9MultiIndex},
		{"E10", "Correctness battery: races, rollbacks, unique keys (§2.2.3)", E10Correctness},
		{"E11", "Side-file growth and catch-up (§3.2.2-3.2.5)", E11SideFile},
	}
	sort.Slice(list, func(i, j int) bool {
		a, _ := strconv.Atoi(list[i].ID[1:])
		b, _ := strconv.Atoi(list[j].ID[1:])
		return a < b
	})
	return list
}

// Get returns one experiment by ID.
func Get(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---------------------------------------------------------------------------
// shared setup
// ---------------------------------------------------------------------------

const tableName = "orders"

// setup opens a DB with a populated orders table.
func setup(rows int) (*engine.DB, []types.RID, error) {
	return setupMetrics(rows, false)
}

// setupMetrics is setup with the metrics registry optionally disabled (the
// baseline configuration the overhead measurement compares against).
func setupMetrics(rows int, disableMetrics bool) (*engine.DB, []types.RID, error) {
	db, err := engine.Open(engine.Config{FS: vfs.NewMemFS(), PoolSize: 4096, DisableMetrics: disableMetrics})
	if err != nil {
		return nil, nil, err
	}
	if _, err := db.CreateTable(tableName, workload.Schema()); err != nil {
		return nil, nil, err
	}
	rids, err := workload.Populate(db, tableName, rows, 24)
	if err != nil {
		return nil, nil, err
	}
	return db, rids, nil
}

func spec(name string, method catalog.BuildMethod) engine.CreateIndexSpec {
	return engine.CreateIndexSpec{
		Name: name, Table: tableName, Columns: []string{"key"}, Method: method,
	}
}

func methodName(m catalog.BuildMethod) string { return m.String() }

func ms(d time.Duration) string { return fmt.Sprintf("%.1f", d.Seconds()*1000) }
