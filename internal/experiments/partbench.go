package experiments

import (
	"fmt"
	"runtime"
	"time"

	"onlineindex/internal/catalog"
	"onlineindex/internal/engine"
	"onlineindex/internal/harness"
	"onlineindex/internal/keyenc"
	"onlineindex/internal/partition"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
	"onlineindex/internal/workload"
)

// PartCell is one partition-count measurement of the partbench matrix.
type PartCell struct {
	Partitions int     `json:"partitions"`
	BuildMS    float64 `json:"build_ms"`
	LookupOps  float64 `json:"lookup_ops_per_sec"`
	ScanOps    float64 `json:"scan_ops_per_sec"`
}

// PartRecord is the machine-readable horizontal-partitioning measurement
// merged into BENCH_build.json by `benchtab -partbench`: for P in {1, 2, 4}
// shards, the wall-clock of a fan-out SF build of the logical by_id index
// and the routed read mix on the result — exact-shard point lookups and
// 200-entry ordered scans through the partition-merging cursor. Trials are
// interleaved across the partition counts (trial 0 of every P before trial
// 1 of any) so ambient machine noise lands on all cells alike; each cell
// keeps its best trial.
type PartRecord struct {
	Kind    string     `json:"kind"` // "partbench"
	NumCPU  int        `json:"num_cpu"`
	Rows    int        `json:"rows"`
	Trials  int        `json:"trials"`
	Scheme  string     `json:"scheme"`
	Results []PartCell `json:"results"`
}

// partSpec parses the -partition-scheme flag value.
func partSpec(scheme string, parts, rows int) (partition.Spec, error) {
	spec := partition.Spec{Partitions: parts, KeyColumn: "id"}
	switch scheme {
	case "hash", "":
		spec.Scheme = catalog.SchemeHash
	case "range":
		spec.Scheme = catalog.SchemeRange
		for i := 1; i < parts; i++ {
			spec.Bounds = append(spec.Bounds, keyenc.Int64(int64(rows*i/parts)))
		}
	default:
		return spec, fmt.Errorf("unknown partition scheme %q (want range or hash)", scheme)
	}
	return spec, nil
}

// PartTrial populates one fresh P-shard table, times the fan-out SF build
// of by_id, and measures the routed read mix on it.
func PartTrial(cfg Config, scheme string, rows, parts, readers int, dur time.Duration) (PartCell, error) {
	cell := PartCell{Partitions: parts}
	db, err := engine.Open(engine.Config{FS: vfs.NewMemFS(), PoolSize: 4096})
	if err != nil {
		return cell, err
	}
	defer db.Close() //nolint:errcheck
	spec, err := partSpec(scheme, parts, rows)
	if err != nil {
		return cell, err
	}
	if _, err := partition.CreateTable(db, tableName, workload.Schema(), spec); err != nil {
		return cell, err
	}
	r := partition.NewRouter(db)
	if _, err := workload.Populate(r, tableName, rows, 16); err != nil {
		return cell, err
	}

	start := time.Now()
	if _, err := partition.Build(db, engine.CreateIndexSpec{
		Name: "by_id", Table: tableName, Columns: []string{"id"}, Method: catalog.MethodSF,
	}, partition.BuildOptions{Options: cfg.buildOptions()}); err != nil {
		return cell, err
	}
	cell.BuildMS = time.Since(start).Seconds() * 1000

	// Point lookups on the partition key route to exactly one shard.
	lookups, err := concurrentOpsPerSec(readers, dur, func(g, i int) error {
		tx := db.Begin()
		defer tx.Rollback() //nolint:errcheck
		for j := 0; j < readBatch; j++ {
			id := int64((i*readBatch + j*7 + g*13) % rows)
			rids, err := r.Lookup(tx, "by_id", keyenc.Int64(id))
			if err != nil {
				return err
			}
			if len(rids) != 1 {
				return fmt.Errorf("partbench: lookup id %d returned %d rids", id, len(rids))
			}
		}
		return nil
	})
	if err != nil {
		return cell, err
	}
	cell.LookupOps = lookups * readBatch

	// 200-entry ordered scans: under hash these k-way merge all P shard
	// cursors, under range they concatenate in partition order.
	cell.ScanOps, err = concurrentOpsPerSec(readers, dur, func(g, i int) error {
		tx := db.Begin()
		defer tx.Rollback() //nolint:errcheck
		lo := []keyenc.Value{keyenc.Int64(int64((i*37 + g*11) % rows))}
		n := 0
		return r.Scan(tx, "by_id", lo, nil, func(_ []byte, _ types.RID) bool {
			n++
			return n < 200
		})
	})
	return cell, err
}

// PartBench runs the partitioning benchmark and returns the
// BENCH_build.json record. extra, when > 0, adds one more partition count
// to the standard {1, 2, 4} sweep (the -partitions flag).
func PartBench(cfg Config, scheme string, rows, extra int) (PartRecord, error) {
	const (
		trials  = 5
		readers = 4
		dur     = 120 * time.Millisecond
	)
	if scheme == "" {
		scheme = "hash"
	}
	counts := []int{1, 2, 4}
	if extra > 0 && extra != 1 && extra != 2 && extra != 4 {
		counts = append(counts, extra)
	}
	rec := PartRecord{
		Kind: "partbench", NumCPU: runtime.NumCPU(), Rows: rows,
		Trials: trials, Scheme: scheme,
	}
	cells := make([]PartCell, len(counts))
	for i, p := range counts {
		cells[i] = PartCell{Partitions: p}
	}
	for t := 0; t < trials; t++ {
		for i, p := range counts {
			cell, err := PartTrial(cfg, scheme, rows, p, readers, dur)
			if err != nil {
				return rec, fmt.Errorf("partbench P=%d trial %d: %w", p, t, err)
			}
			if cells[i].BuildMS == 0 || cell.BuildMS < cells[i].BuildMS {
				cells[i].BuildMS = cell.BuildMS
			}
			if cell.LookupOps > cells[i].LookupOps {
				cells[i].LookupOps = cell.LookupOps
			}
			if cell.ScanOps > cells[i].ScanOps {
				cells[i].ScanOps = cell.ScanOps
			}
		}
	}
	rec.Results = cells

	rows2 := make([][]string, len(cells))
	for i, c := range cells {
		rows2[i] = []string{
			fmt.Sprintf("%d", c.Partitions),
			fmt.Sprintf("%.1f", c.BuildMS),
			fmt.Sprintf("%.0f", c.LookupOps),
			fmt.Sprintf("%.0f", c.ScanOps),
		}
	}
	cfg.printf("%s\n", harness.Table(
		fmt.Sprintf("Horizontal partitioning (%s on id), %d rows, %d readers on %d CPUs (best of %d interleaved trials)",
			scheme, rows, readers, rec.NumCPU, trials),
		[]string{"partitions", "SF build ms", "lookup ops/s", "scan ops/s"},
		rows2))
	return rec, nil
}
