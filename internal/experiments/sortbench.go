package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"onlineindex/internal/catalog"
	"onlineindex/internal/core"
	"onlineindex/internal/engine"
	"onlineindex/internal/extsort"
	"onlineindex/internal/harness"
	"onlineindex/internal/keyenc"
	"onlineindex/internal/vfs"
	"onlineindex/internal/workload"
)

// SortRecord is one machine-readable measurement of the parallel back half
// (partitioned run generation + merge→load overlap), written by
// `benchtab -sortbench` into BENCH_build.json with "kind": "sortbench" so it
// merges alongside the plain build records without clobbering them.
type SortRecord struct {
	Kind    string `json:"kind"` // "sortbench"
	Rows    int    `json:"rows"`
	Method  string `json:"method"`
	Workers int    `json:"workers"`
	// NumCPU records the cores the measurement ran on: partition counts
	// beyond it cannot show a wall-clock win, only feed-busy movement.
	NumCPU     int     `json:"num_cpu"`
	Partitions int     `json:"sort_partitions"`
	Overlap    bool    `json:"merge_overlap"`
	Compress   bool    `json:"compress_keys"`
	TotalMs    float64 `json:"total_ms"`
	ScanMs     float64 `json:"scan_sort_ms"`
	InsertMs   float64 `json:"insert_ms"`
	SideMs     float64 `json:"side_file_ms"`
	Runs       int     `json:"runs"`
	// BytesSpilled is the total run-file bytes the sort wrote (post
	// prefix-delta compression when Compress is set); BranchFanout is the
	// built tree's mean children per internal page. Together they show what
	// key compression buys on each side of the merge.
	BytesSpilled uint64  `json:"bytes_spilled"`
	BranchFanout float64 `json:"branch_fanout"`
	// FeedWait is the sequencer blocking on extraction results; FeedBusy is
	// the time it spends inside the sorter feed. Partitioning is meant to
	// collapse FeedBusy (the serial-feed bottleneck) — watching both shows
	// whether the wait merely moved.
	FeedWaitMs float64 `json:"feed_wait_ms"`
	FeedBusyMs float64 `json:"feed_busy_ms"`
}

// SortBench builds an SF index on a quiet n-row table at ScanWorkers=4 for
// each (SortPartitions, MergeOverlap) combination on identically populated
// tables. Configurations are interleaved and each is recorded as the best of
// several trials, the BuildBench protocol, so they see the same machine
// drift. Every built index is verified before its time is recorded.
func SortBench(cfg Config, n int) ([]SortRecord, error) {
	const trials = 5
	const workers = 4
	type config struct {
		parts    int
		overlap  bool
		compress bool
	}
	// The last two rows are the compressed-vs-uncompressed pair at the
	// fastest uncompressed configuration.
	configs := []config{{1, false, false}, {4, false, false}, {1, true, false}, {4, true, false}, {4, true, true}}

	oneBuild := func(c config) (*core.Result, time.Duration, float64, error) {
		db, _, err := setup(n)
		if err != nil {
			return nil, 0, 0, err
		}
		runtime.GC()
		start := time.Now()
		res, err := core.Build(db, spec("by_key", catalog.MethodSF), core.Options{
			ScanWorkers: workers, SortPartitions: c.parts, MergeOverlap: c.overlap,
			CompressKeys: c.compress,
		})
		if err != nil {
			return nil, 0, 0, fmt.Errorf("sortbench P=%d overlap=%v comp=%v: %w", c.parts, c.overlap, c.compress, err)
		}
		total := time.Since(start)
		if err := db.CheckIndexConsistency("by_key"); err != nil {
			return nil, 0, 0, fmt.Errorf("sortbench P=%d overlap=%v comp=%v: %w", c.parts, c.overlap, c.compress, err)
		}
		fanout := 0.0
		if tree, err := db.TreeOf(res.Index.ID); err == nil {
			fanout, _ = tree.AvgBranchFanout()
		}
		return res, total, fanout, nil
	}

	best := make([]*core.Result, len(configs))
	bestT := make([]time.Duration, len(configs))
	fanouts := make([]float64, len(configs))
	for trial := 0; trial < trials; trial++ {
		for i, c := range configs {
			res, total, fanout, err := oneBuild(c)
			if err != nil {
				return nil, err
			}
			if best[i] == nil || total < bestT[i] {
				best[i], bestT[i], fanouts[i] = res, total, fanout
			}
		}
	}

	var recs []SortRecord
	var rows [][]string
	for i, c := range configs {
		st := best[i].Stats
		rec := SortRecord{
			Kind: "sortbench", Rows: n, Method: methodName(catalog.MethodSF),
			Workers: workers, NumCPU: runtime.NumCPU(),
			Partitions: c.parts, Overlap: c.overlap, Compress: c.compress,
			TotalMs: msf(bestT[i]), ScanMs: msf(st.ScanSort),
			InsertMs: msf(st.Insert), SideMs: msf(st.SideFile),
			Runs:         st.Runs,
			FeedWaitMs:   msf(st.Pipeline.FeedWait),
			FeedBusyMs:   msf(st.Pipeline.FeedBusy),
			BytesSpilled: st.BytesSpilled,
			BranchFanout: fanouts[i],
		}
		recs = append(recs, rec)
		rows = append(rows, []string{
			harness.N(uint64(n)), fmt.Sprintf("%d", c.parts), fmt.Sprintf("%v", c.overlap),
			fmt.Sprintf("%v", c.compress),
			ms(st.ScanSort), ms(bestT[i]),
			harness.N(rec.BytesSpilled), fmt.Sprintf("%.1f", rec.BranchFanout),
		})
	}
	cfg.printf("%s\n", harness.Table(
		"SF build vs sort partitions, merge→load overlap, key compression (ScanWorkers=4, quiet table)",
		[]string{"rows", "partitions", "overlap", "compress", "scan+sort ms", "total ms", "bytes spilled", "branch fanout"},
		rows))
	return recs, nil
}

// MeasureSpill builds the same SF index on two identically populated n-row
// tables, once with prefix-delta key compression and once without, and
// returns the run-file bytes each sort spilled plus the built trees' branch
// fanouts. The key column is composite-style ("tenant/order") rather than
// the hash-prefixed benchmark key: prefix truncation targets keys whose
// sorted neighbors share prefixes, and hash prefixes are built not to. Byte
// counts are deterministic (no wall-clock), so the compression gate can run
// anywhere without trials.
func MeasureSpill(n int) (plain, comp SpillMeasure, err error) {
	one := func(compress bool) (SpillMeasure, error) {
		db, err := engine.Open(engine.Config{FS: vfs.NewMemFS(), PoolSize: 4096})
		if err != nil {
			return SpillMeasure{}, err
		}
		if _, err := db.CreateTable("orders", workload.Schema()); err != nil {
			return SpillMeasure{}, err
		}
		rng := rand.New(rand.NewSource(11))
		for _, id := range rng.Perm(n) {
			tx := db.Begin()
			row := engine.Row{
				keyenc.Int64(int64(id)),
				keyenc.String(fmt.Sprintf("tenant-%03d/order-%010d", id%37, id)),
				keyenc.String("x"),
			}
			if _, err := db.Insert(tx, "orders", row); err != nil {
				tx.Rollback() //nolint:errcheck
				return SpillMeasure{}, err
			}
			if err := tx.Commit(); err != nil {
				return SpillMeasure{}, err
			}
		}
		res, err := core.Build(db, spec("by_key", catalog.MethodSF), core.Options{
			SortMemory: 4096, CompressKeys: compress,
		})
		if err != nil {
			return SpillMeasure{}, err
		}
		if err := db.CheckIndexConsistency("by_key"); err != nil {
			return SpillMeasure{}, err
		}
		m := SpillMeasure{Bytes: res.Stats.BytesSpilled}
		if tree, err := db.TreeOf(res.Index.ID); err == nil {
			m.Fanout, _ = tree.AvgBranchFanout()
		}
		return m, nil
	}
	if plain, err = one(false); err != nil {
		return plain, comp, err
	}
	comp, err = one(true)
	return plain, comp, err
}

// SpillMeasure is one side of the compression gate's comparison.
type SpillMeasure struct {
	Bytes  uint64
	Fanout float64
}

// MeasureRunGeneration times the sort's run-generation half in isolation —
// feeding n pre-generated items through a PartSorter page by page and
// spilling the final runs — with everything else (item generation, the merge
// that is serial either way) outside the window. This is what the
// partitioned-sort gate compares across partition counts.
func MeasureRunGeneration(n, capacity, parts int, concurrent bool) (time.Duration, error) {
	fs := vfs.NewMemFS()
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(n)
	const pageLen = 64
	pages := make([][][]byte, 0, n/pageLen+1)
	for i := 0; i < n; i += pageLen {
		j := i + pageLen
		if j > n {
			j = n
		}
		page := make([][]byte, j-i)
		for k := i; k < j; k++ {
			page[k-i] = []byte(fmt.Sprintf("key-%012d-pad-%016x", perm[k], perm[k]))
		}
		pages = append(pages, page)
	}
	partCap := capacity
	if parts > 1 {
		partCap = capacity / parts
		if partCap < 2 {
			partCap = 2
		}
	}
	s := extsort.NewPartSorter(fs, "sortgate", partCap, parts, concurrent)
	defer s.Close()
	runtime.GC()
	start := time.Now()
	for _, page := range pages {
		if err := s.FeedPage(page); err != nil {
			return 0, err
		}
	}
	if _, err := s.Finish(); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
