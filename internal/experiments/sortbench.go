package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"onlineindex/internal/catalog"
	"onlineindex/internal/core"
	"onlineindex/internal/extsort"
	"onlineindex/internal/harness"
	"onlineindex/internal/vfs"
)

// SortRecord is one machine-readable measurement of the parallel back half
// (partitioned run generation + merge→load overlap), written by
// `benchtab -sortbench` into BENCH_build.json with "kind": "sortbench" so it
// merges alongside the plain build records without clobbering them.
type SortRecord struct {
	Kind    string `json:"kind"` // "sortbench"
	Rows    int    `json:"rows"`
	Method  string `json:"method"`
	Workers int    `json:"workers"`
	// NumCPU records the cores the measurement ran on: partition counts
	// beyond it cannot show a wall-clock win, only feed-busy movement.
	NumCPU     int     `json:"num_cpu"`
	Partitions int     `json:"sort_partitions"`
	Overlap    bool    `json:"merge_overlap"`
	TotalMs    float64 `json:"total_ms"`
	ScanMs     float64 `json:"scan_sort_ms"`
	InsertMs   float64 `json:"insert_ms"`
	SideMs     float64 `json:"side_file_ms"`
	Runs       int     `json:"runs"`
	// FeedWait is the sequencer blocking on extraction results; FeedBusy is
	// the time it spends inside the sorter feed. Partitioning is meant to
	// collapse FeedBusy (the serial-feed bottleneck) — watching both shows
	// whether the wait merely moved.
	FeedWaitMs float64 `json:"feed_wait_ms"`
	FeedBusyMs float64 `json:"feed_busy_ms"`
}

// SortBench builds an SF index on a quiet n-row table at ScanWorkers=4 for
// each (SortPartitions, MergeOverlap) combination on identically populated
// tables. Configurations are interleaved and each is recorded as the best of
// several trials, the BuildBench protocol, so they see the same machine
// drift. Every built index is verified before its time is recorded.
func SortBench(cfg Config, n int) ([]SortRecord, error) {
	const trials = 5
	const workers = 4
	type config struct {
		parts   int
		overlap bool
	}
	configs := []config{{1, false}, {4, false}, {1, true}, {4, true}}

	oneBuild := func(c config) (*core.Result, time.Duration, error) {
		db, _, err := setup(n)
		if err != nil {
			return nil, 0, err
		}
		runtime.GC()
		start := time.Now()
		res, err := core.Build(db, spec("by_key", catalog.MethodSF), core.Options{
			ScanWorkers: workers, SortPartitions: c.parts, MergeOverlap: c.overlap,
		})
		if err != nil {
			return nil, 0, fmt.Errorf("sortbench P=%d overlap=%v: %w", c.parts, c.overlap, err)
		}
		total := time.Since(start)
		if err := db.CheckIndexConsistency("by_key"); err != nil {
			return nil, 0, fmt.Errorf("sortbench P=%d overlap=%v: %w", c.parts, c.overlap, err)
		}
		return res, total, nil
	}

	best := make([]*core.Result, len(configs))
	bestT := make([]time.Duration, len(configs))
	for trial := 0; trial < trials; trial++ {
		for i, c := range configs {
			res, total, err := oneBuild(c)
			if err != nil {
				return nil, err
			}
			if best[i] == nil || total < bestT[i] {
				best[i], bestT[i] = res, total
			}
		}
	}

	var recs []SortRecord
	var rows [][]string
	for i, c := range configs {
		st := best[i].Stats
		rec := SortRecord{
			Kind: "sortbench", Rows: n, Method: methodName(catalog.MethodSF),
			Workers: workers, NumCPU: runtime.NumCPU(),
			Partitions: c.parts, Overlap: c.overlap,
			TotalMs: msf(bestT[i]), ScanMs: msf(st.ScanSort),
			InsertMs: msf(st.Insert), SideMs: msf(st.SideFile),
			Runs:       st.Runs,
			FeedWaitMs: msf(st.Pipeline.FeedWait),
			FeedBusyMs: msf(st.Pipeline.FeedBusy),
		}
		recs = append(recs, rec)
		rows = append(rows, []string{
			harness.N(uint64(n)), fmt.Sprintf("%d", c.parts), fmt.Sprintf("%v", c.overlap),
			ms(st.ScanSort), ms(st.Insert), ms(bestT[i]),
			fmt.Sprintf("%.1f", rec.FeedWaitMs), fmt.Sprintf("%.1f", rec.FeedBusyMs),
		})
	}
	cfg.printf("%s\n", harness.Table(
		"SF build vs sort partitions and merge→load overlap (ScanWorkers=4, quiet table)",
		[]string{"rows", "partitions", "overlap", "scan+sort ms", "insert ms", "total ms", "feed wait ms", "feed busy ms"},
		rows))
	return recs, nil
}

// MeasureRunGeneration times the sort's run-generation half in isolation —
// feeding n pre-generated items through a PartSorter page by page and
// spilling the final runs — with everything else (item generation, the merge
// that is serial either way) outside the window. This is what the
// partitioned-sort gate compares across partition counts.
func MeasureRunGeneration(n, capacity, parts int, concurrent bool) (time.Duration, error) {
	fs := vfs.NewMemFS()
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(n)
	const pageLen = 64
	pages := make([][][]byte, 0, n/pageLen+1)
	for i := 0; i < n; i += pageLen {
		j := i + pageLen
		if j > n {
			j = n
		}
		page := make([][]byte, j-i)
		for k := i; k < j; k++ {
			page[k-i] = []byte(fmt.Sprintf("key-%012d-pad-%016x", perm[k], perm[k]))
		}
		pages = append(pages, page)
	}
	partCap := capacity
	if parts > 1 {
		partCap = capacity / parts
		if partCap < 2 {
			partCap = 2
		}
	}
	s := extsort.NewPartSorter(fs, "sortgate", partCap, parts, concurrent)
	defer s.Close()
	runtime.GC()
	start := time.Now()
	for _, page := range pages {
		if err := s.FeedPage(page); err != nil {
			return 0, err
		}
	}
	if _, err := s.Finish(); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
