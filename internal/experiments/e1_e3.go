package experiments

import (
	"fmt"
	"time"

	"onlineindex/internal/catalog"
	"onlineindex/internal/core"
	"onlineindex/internal/engine"
	"onlineindex/internal/harness"
	"onlineindex/internal/workload"
)

// E1BuildTime measures the quiet-table build cost of the three methods at
// several table sizes, with the phase breakdown (scan+sort, key insertion /
// bottom-up load, side-file application).
//
// Paper claim (§4): "In SF, IB is able to build the index more efficiently
// than in NSF" — no log records and no tree traversals until side-file
// processing, bottom-up build. The offline build is the lower bound.
func E1BuildTime(cfg Config) error {
	var rows [][]string
	for _, n := range []int{cfg.rows(10_000), cfg.rows(30_000), cfg.rows(60_000)} {
		for _, method := range []catalog.BuildMethod{catalog.MethodOffline, catalog.MethodNSF, catalog.MethodSF} {
			db, _, err := setup(n)
			if err != nil {
				return err
			}
			start := time.Now()
			res, err := core.Build(db, spec("by_key", method), cfg.buildOptions())
			if err != nil {
				return err
			}
			total := time.Since(start)
			if err := db.CheckIndexConsistency("by_key"); err != nil {
				return fmt.Errorf("E1 %s n=%d: %w", method, n, err)
			}
			st := res.Stats
			rows = append(rows, []string{
				harness.N(uint64(n)), methodName(method), fmt.Sprintf("%d", cfg.workers()),
				ms(st.ScanSort), ms(st.Insert), ms(st.SideFile), ms(total),
				fmt.Sprintf("%d", st.Runs), ms(st.Pipeline.ExtractBusy), ms(st.Pipeline.FeedWait),
			})
		}
	}
	cfg.printf("%s\n", harness.Table(
		"E1  Build time, quiet table (phase breakdown)",
		[]string{"rows", "method", "workers", "scan+sort ms", "insert ms", "side-file ms", "total ms", "runs", "extract-busy ms", "feed-wait ms"},
		rows))
	return nil
}

// E2Availability measures committed update-transaction throughput while each
// build method runs, against the no-build baseline.
//
// Paper claim (§1): disallowing updates during an index build "may become
// unacceptable"; both online algorithms keep the table fully available
// while the offline baseline blocks updaters for the entire build (visible
// as a max stall roughly equal to the build time and a throughput collapse).
func E2Availability(cfg Config) error {
	n := cfg.rows(40_000)
	var rows [][]string

	measure := func(label string, build func(db *engine.DB) error) error {
		db, rids, err := setup(n)
		if err != nil {
			return err
		}
		runner := workload.NewRunner(db, tableName, rids, 4, workload.DefaultMix)
		runner.Start()
		buildStart := time.Now()
		var buildDur time.Duration
		if build != nil {
			if err := build(db); err != nil {
				runner.Stop()
				return err
			}
			buildDur = time.Since(buildStart)
		} else {
			time.Sleep(400 * time.Millisecond)
			buildDur = 0
		}
		st := runner.Stop()
		if errs := runner.Errs(); len(errs) > 0 {
			return fmt.Errorf("E2 %s: workload error: %v", label, errs[0])
		}
		if build != nil {
			// Verify only after the workload has drained: the checker's two
			// scans are not atomic against live updates.
			if err := db.CheckIndexConsistency("by_key"); err != nil {
				return fmt.Errorf("E2 %s: %w", label, err)
			}
		}
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%.0f", st.Throughput()),
			ms(st.MaxStall),
			ms(buildDur),
			harness.N(st.Commits),
		})
		return nil
	}

	if err := measure("no build (baseline)", nil); err != nil {
		return err
	}
	for _, method := range []catalog.BuildMethod{catalog.MethodOffline, catalog.MethodNSF, catalog.MethodSF} {
		m := method
		if err := measure(methodName(m)+" build", func(db *engine.DB) error {
			_, err := core.Build(db, spec("by_key", m), core.Options{})
			return err
		}); err != nil {
			return err
		}
	}
	cfg.printf("%s\n", harness.Table(
		"E2  Update throughput during index build (4 updaters)",
		[]string{"scenario", "commits/s", "max stall", "build ms", "commits"},
		rows))
	return nil
}

// E3Quiesce measures the descriptor-creation quiesce: with a long-running
// update transaction open, the NSF DDL must wait for it (and blocks new
// updaters meanwhile), while SF's DDL proceeds immediately.
//
// Paper claims: §2.2.1 "this is a short term quiesce"; §3.2.1 "without
// quiescing (update) transactions"; §4 "in SF, no quiescing of table updates
// by transactions is required at any time".
func E3Quiesce(cfg Config) error {
	var rows [][]string
	for _, method := range []catalog.BuildMethod{catalog.MethodNSF, catalog.MethodSF} {
		for _, holdMs := range []int{0, 50, 200} {
			db, rids, err := setup(cfg.rows(2_000))
			if err != nil {
				return err
			}
			// A transaction with an uncommitted update holds IX on the table.
			longTx := db.Begin()
			if err := db.Delete(longTx, tableName, rids[0]); err != nil {
				return err
			}
			go func(d int) {
				time.Sleep(time.Duration(d) * time.Millisecond)
				longTx.Commit()
			}(holdMs)

			res, err := core.Build(db, spec("by_key", method), core.Options{})
			if err != nil {
				return err
			}
			rows = append(rows, []string{
				methodName(method),
				fmt.Sprintf("%d", holdMs),
				ms(res.Stats.QuiesceWait),
			})
		}
	}
	cfg.printf("%s\n", harness.Table(
		"E3  Descriptor-create quiesce wait vs open-transaction hold time",
		[]string{"method", "txn holds for (ms)", "quiesce wait (ms)"},
		rows))
	return nil
}
