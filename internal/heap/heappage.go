// Package heap implements the data pages of a table: slotted pages of
// records addressed by RID, with logged insert/delete/update operations and
// the sequential scan the index builder uses to extract keys.
//
// Two details of the paper's execution model live here:
//
//   - Record operations expose an under-latch hook so the transaction layer
//     can read the Index_Build flag and the index builder's Current-RID
//     position "while holding the data page latch" (§3.2.1) — the latch is
//     what makes the Target-RID vs Current-RID comparison race-free.
//   - Every data-page log record carries the count of indexes visible to the
//     transaction at the time of the update (§3.1.2), which rollback uses to
//     detect indexes that became visible between forward processing and
//     undo.
//
// RIDs are stable: deleting a record leaves a reusable hole, so a later
// insert may land on the same RID (the paper's §2.2.3 example depends on
// this).
package heap

import (
	"encoding/binary"
	"errors"
	"fmt"

	"onlineindex/internal/page"
	"onlineindex/internal/types"
)

func init() {
	page.Register(page.KindHeap, func() page.Page { return &Page{} })
}

// MaxRecordSize is the largest record a heap page accepts. One record must
// always fit a fresh page with room to spare for the slot directory.
const MaxRecordSize = page.Size - page.HeaderSize - 64

// slotSize is the per-slot directory overhead we budget in the byte
// accounting (length prefix in the marshalled image).
const slotSize = 2

// Page is a slotted heap page. A nil record marks a free (tombstoned or
// never-used) slot; such slots are reused by later inserts, keeping RIDs
// dense and stable.
type Page struct {
	page.Header
	records [][]byte
	used    int // bytes the marshalled image will need
}

// NewPage returns an empty, formatted heap page.
func NewPage() *Page {
	return &Page{used: page.HeaderSize + 2} // header + record count
}

// Kind implements page.Page.
func (p *Page) Kind() page.Kind { return page.KindHeap }

// FreeSpace returns the bytes still available for new records.
func (p *Page) FreeSpace() int { return page.Size - p.used }

// NumSlots returns the size of the slot directory (including free slots).
func (p *Page) NumSlots() int { return len(p.records) }

// NumRecords returns the number of live records.
func (p *Page) NumRecords() int {
	n := 0
	for _, r := range p.records {
		if r != nil {
			n++
		}
	}
	return n
}

// HasRoom reports whether a record of the given size fits.
func (p *Page) HasRoom(recLen int) bool {
	return p.used+slotSize+recLen <= page.Size
}

// Insert places rec in the first acceptable free slot (or a new one) and
// returns its slot number. It fails if the page is full. A non-nil accept
// callback can veto slot reuse — the engine uses it to conditionally lock
// the candidate RID so a slot freed by a still-uncommitted deleter is not
// reused (the deleter's rollback must be able to reinsert at its RID).
func (p *Page) Insert(rec []byte, accept func(types.SlotNum) bool) (types.SlotNum, error) {
	if len(rec) > MaxRecordSize {
		return 0, fmt.Errorf("heap: record of %d bytes exceeds max %d", len(rec), MaxRecordSize)
	}
	if !p.HasRoom(len(rec)) {
		return 0, ErrPageFull
	}
	for i, r := range p.records {
		if r == nil && (accept == nil || accept(types.SlotNum(i))) {
			p.records[i] = cloneBytes(rec)
			p.used += len(rec) // slot dir space already accounted
			return types.SlotNum(i), nil
		}
	}
	if accept != nil && !accept(types.SlotNum(len(p.records))) {
		return 0, ErrPageFull // fresh slot vetoed: caller retries elsewhere
	}
	p.records = append(p.records, cloneBytes(rec))
	p.used += slotSize + len(rec)
	return types.SlotNum(len(p.records) - 1), nil
}

// InsertAt places rec in a specific slot, growing the directory if needed.
// Redo and undo use it to reproduce an exact RID.
func (p *Page) InsertAt(slot types.SlotNum, rec []byte) error {
	for int(slot) >= len(p.records) {
		p.records = append(p.records, nil)
		p.used += slotSize
	}
	if p.records[slot] != nil {
		return fmt.Errorf("heap: slot %d already occupied", slot)
	}
	p.records[slot] = cloneBytes(rec)
	p.used += len(rec)
	return nil
}

// Get returns the record in slot, or nil if the slot is free or absent.
func (p *Page) Get(slot types.SlotNum) []byte {
	if int(slot) >= len(p.records) {
		return nil
	}
	return p.records[slot]
}

// Delete frees the slot and returns the old record.
func (p *Page) Delete(slot types.SlotNum) ([]byte, error) {
	if int(slot) >= len(p.records) || p.records[slot] == nil {
		return nil, fmt.Errorf("heap: delete of empty slot %d", slot)
	}
	old := p.records[slot]
	p.records[slot] = nil
	p.used -= len(old)
	return old, nil
}

// Update replaces the record in slot, returning the old record. It fails if
// the new record does not fit the page.
func (p *Page) Update(slot types.SlotNum, rec []byte) ([]byte, error) {
	if int(slot) >= len(p.records) || p.records[slot] == nil {
		return nil, fmt.Errorf("heap: update of empty slot %d", slot)
	}
	old := p.records[slot]
	if p.used-len(old)+len(rec) > page.Size {
		return nil, ErrPageFull
	}
	p.records[slot] = cloneBytes(rec)
	p.used += len(rec) - len(old)
	return old, nil
}

// ErrPageFull reports that a record does not fit the page.
var ErrPageFull = errors.New("heap: page full")

// MarshalPage implements page.Page.
//
// Image layout after the common header: numSlots uint16, then per slot a
// uint16 length (0xFFFF for a free slot) followed by the record bytes.
func (p *Page) MarshalPage() ([]byte, error) {
	img := make([]byte, page.Size)
	p.MarshalHeader(img, page.KindHeap)
	off := page.HeaderSize
	binary.LittleEndian.PutUint16(img[off:], uint16(len(p.records)))
	off += 2
	for _, r := range p.records {
		if r == nil {
			if off+2 > page.Size {
				return nil, fmt.Errorf("heap: page overflow at %d bytes", off)
			}
			binary.LittleEndian.PutUint16(img[off:], 0xFFFF)
			off += 2
			continue
		}
		if off+2+len(r) > page.Size {
			return nil, fmt.Errorf("heap: page overflow at %d bytes", off)
		}
		binary.LittleEndian.PutUint16(img[off:], uint16(len(r)))
		off += 2
		copy(img[off:], r)
		off += len(r)
	}
	return img, nil
}

// UnmarshalPage implements page.Page.
func (p *Page) UnmarshalPage(img []byte) error {
	if _, err := p.UnmarshalHeader(img); err != nil {
		return err
	}
	off := page.HeaderSize
	n := int(binary.LittleEndian.Uint16(img[off:]))
	off += 2
	p.records = make([][]byte, 0, n)
	p.used = page.HeaderSize + 2
	for i := 0; i < n; i++ {
		if off+2 > len(img) {
			return fmt.Errorf("heap: corrupt page (slot %d)", i)
		}
		l := binary.LittleEndian.Uint16(img[off:])
		off += 2
		p.used += slotSize
		if l == 0xFFFF {
			p.records = append(p.records, nil)
			continue
		}
		if off+int(l) > len(img) {
			return fmt.Errorf("heap: corrupt page (slot %d length %d)", i, l)
		}
		p.records = append(p.records, cloneBytes(img[off:off+int(l)]))
		p.used += int(l)
		off += int(l)
	}
	return nil
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	c := make([]byte, len(b))
	copy(c, b)
	return c
}
