package heap

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"onlineindex/internal/buffer"
	"onlineindex/internal/rm"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
	"onlineindex/internal/wal"
)

func setup(t *testing.T) (*vfs.MemFS, *wal.Log, *buffer.Pool, *Table) {
	t.Helper()
	fs := vfs.NewMemFS()
	log, err := wal.Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.New(fs, log, 64)
	tbl, err := Open(pool, 1)
	if err != nil {
		t.Fatal(err)
	}
	return fs, log, pool, tbl
}

func logger(log *wal.Log, txn types.TxnID) *rm.SimpleLogger {
	return &rm.SimpleLogger{L: log, Txn: txn}
}

func TestInsertGet(t *testing.T) {
	_, log, _, tbl := setup(t)
	tl := logger(log, 1)
	rid, err := tbl.Insert(tl, []byte("record one"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok, err := tbl.Get(rid)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if string(rec) != "record one" {
		t.Fatalf("rec = %q", rec)
	}
}

func TestDeleteFreesSlotAndRIDReuse(t *testing.T) {
	_, log, _, tbl := setup(t)
	tl := logger(log, 1)
	rid1, _ := tbl.Insert(tl, []byte("aaa"), nil, nil)
	old, err := tbl.Delete(tl, rid1, nil)
	if err != nil || string(old) != "aaa" {
		t.Fatalf("delete = %q, %v", old, err)
	}
	if _, ok, _ := tbl.Get(rid1); ok {
		t.Fatal("deleted record still visible")
	}
	// The paper's §2.2.3 example: a new insert can land on the same RID.
	rid2, _ := tbl.Insert(tl, []byte("bbb"), nil, nil)
	if rid2 != rid1 {
		t.Fatalf("slot not reused: %v vs %v", rid2, rid1)
	}
}

func TestUpdate(t *testing.T) {
	_, log, _, tbl := setup(t)
	tl := logger(log, 1)
	rid, _ := tbl.Insert(tl, []byte("before"), nil, nil)
	old, err := tbl.Update(tl, rid, []byte("after"), nil)
	if err != nil || string(old) != "before" {
		t.Fatalf("update = %q, %v", old, err)
	}
	rec, _, _ := tbl.Get(rid)
	if string(rec) != "after" {
		t.Fatalf("rec = %q", rec)
	}
}

func TestMultiPageAllocationAndScan(t *testing.T) {
	_, log, _, tbl := setup(t)
	tl := logger(log, 1)
	var want []string
	for i := 0; i < 500; i++ {
		rec := fmt.Sprintf("record-%04d-%s", i, string(bytes.Repeat([]byte{'x'}, 100)))
		if _, err := tbl.Insert(tl, []byte(rec), nil, nil); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	n, _ := tbl.PageCount()
	if n < 2 {
		t.Fatalf("expected multiple pages, got %d", n)
	}
	var got []string
	err := tbl.Scan(func(rid types.RID, rec []byte) error {
		got = append(got, string(rec))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan found %d records, want %d", len(got), len(want))
	}
	seen := make(map[string]bool, len(got))
	for _, g := range got {
		seen[g] = true
	}
	for _, w := range want {
		if !seen[w] {
			t.Fatalf("record %q missing from scan", w)
		}
	}
}

func TestDecideRunsUnderLatchWithRID(t *testing.T) {
	_, log, _, tbl := setup(t)
	tl := logger(log, 1)
	var sawRID types.RID
	rid, err := tbl.Insert(tl, []byte("r"), nil, func(r types.RID) uint16 {
		sawRID = r
		return 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if sawRID != rid {
		t.Fatalf("decide saw %v, insert returned %v", sawRID, rid)
	}
	// The logged record must carry the decide-supplied visible count.
	it, _ := log.NewIterator(1)
	var found bool
	for {
		r, ok, _ := it.Next()
		if !ok {
			break
		}
		if r.Type == wal.TypeHeapInsert {
			pl, err := DecodeInsert(r.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if pl.VisCount != 3 {
				t.Fatalf("VisCount = %d, want 3", pl.VisCount)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no HeapInsert record logged")
	}
}

func TestUndoInsertDeleteUpdate(t *testing.T) {
	_, log, _, tbl := setup(t)
	tl := logger(log, 1)

	rid, _ := tbl.Insert(tl, []byte("v1"), nil, nil)
	tbl.Update(tl, rid, []byte("v2"), nil)

	// Undo the update: record reverts to v1.
	if err := tbl.UndoUpdate(tl, UpdatePayload{RID: rid, Old: []byte("v1"), New: []byte("v2")}, types.NilLSN, nil); err != nil {
		t.Fatal(err)
	}
	rec, _, _ := tbl.Get(rid)
	if string(rec) != "v1" {
		t.Fatalf("after undo update rec = %q", rec)
	}

	// Undo the insert: record disappears.
	if err := tbl.UndoInsert(tl, InsertPayload{RID: rid, Rec: []byte("v1")}, types.NilLSN, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tbl.Get(rid); ok {
		t.Fatal("record visible after undo insert")
	}

	// Undo a delete: record reappears at its RID.
	if err := tbl.UndoDelete(tl, DeletePayload{RID: rid, Old: []byte("v1")}, types.NilLSN, nil); err != nil {
		t.Fatal(err)
	}
	rec, ok, _ := tbl.Get(rid)
	if !ok || string(rec) != "v1" {
		t.Fatalf("after undo delete rec = %q ok=%v", rec, ok)
	}

	// CLRs were written for each undo.
	it, _ := log.NewIterator(1)
	clrs := 0
	for {
		r, ok, _ := it.Next()
		if !ok {
			break
		}
		if r.IsCLR() {
			clrs++
		}
	}
	if clrs != 3 {
		t.Fatalf("CLRs = %d, want 3", clrs)
	}
}

func TestRedoRebuildsFromLog(t *testing.T) {
	fs, log, pool, tbl := setup(t)
	tl := logger(log, 1)
	var rids []types.RID
	for i := 0; i < 50; i++ {
		rid, err := tbl.Insert(tl, []byte(fmt.Sprintf("rec-%d", i)), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	tbl.Delete(tl, rids[10], nil)
	tbl.Update(tl, rids[20], []byte("rec-20-updated"), nil)

	// Force the log but NOT the data pages, then crash.
	if err := log.ForceAll(); err != nil {
		t.Fatal(err)
	}
	_ = pool
	fs.Crash()
	fs.Recover()

	// Redo everything from the log into a fresh pool.
	log2, err := wal.Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	pool2 := buffer.New(fs, log2, 64)
	it, _ := log2.NewIterator(1)
	for {
		r, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		switch r.Type {
		case wal.TypeHeapFormat, wal.TypeHeapInsert, wal.TypeHeapDelete, wal.TypeHeapUpdate:
			if err := Redo(pool2, &r); err != nil {
				t.Fatalf("redo %s: %v", &r, err)
			}
		}
	}
	tbl2, err := Open(pool2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tbl2.Get(rids[10]); ok {
		t.Error("deleted record resurrected by redo")
	}
	rec, ok, _ := tbl2.Get(rids[20])
	if !ok || string(rec) != "rec-20-updated" {
		t.Errorf("updated record after redo = %q ok=%v", rec, ok)
	}
	rec, ok, _ = tbl2.Get(rids[30])
	if !ok || string(rec) != "rec-30" {
		t.Errorf("record 30 after redo = %q ok=%v", rec, ok)
	}
}

func TestRedoIsIdempotent(t *testing.T) {
	_, log, pool, tbl := setup(t)
	tl := logger(log, 1)
	rid, _ := tbl.Insert(tl, []byte("once"), nil, nil)

	// Re-apply the whole log to the SAME pool: PageLSN checks must make it a
	// no-op rather than a duplicate insert.
	it, _ := log.NewIterator(1)
	for {
		r, ok, _ := it.Next()
		if !ok {
			break
		}
		if r.Type == wal.TypeHeapFormat || r.Type == wal.TypeHeapInsert {
			if err := Redo(pool, &r); err != nil {
				t.Fatalf("re-redo: %v", err)
			}
		}
	}
	rec, ok, _ := tbl.Get(rid)
	if !ok || string(rec) != "once" {
		t.Fatalf("rec = %q ok=%v", rec, ok)
	}
	n, _ := tbl.PageCount()
	if n != 1 {
		t.Fatalf("pages = %d, want 1", n)
	}
}

func TestConcurrentInserts(t *testing.T) {
	_, log, _, tbl := setup(t)
	const workers = 8
	const per = 100
	var wg sync.WaitGroup
	rids := make([][]types.RID, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tl := logger(log, types.TxnID(w+1))
			for i := 0; i < per; i++ {
				rid, err := tbl.Insert(tl, []byte(fmt.Sprintf("w%d-i%d", w, i)), nil, nil)
				if err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				rids[w] = append(rids[w], rid)
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[types.RID]bool)
	for w := range rids {
		for i, rid := range rids[w] {
			if seen[rid] {
				t.Fatalf("duplicate RID %v", rid)
			}
			seen[rid] = true
			rec, ok, _ := tbl.Get(rid)
			if !ok || string(rec) != fmt.Sprintf("w%d-i%d", w, i) {
				t.Fatalf("w%d i%d: rec=%q ok=%v", w, i, rec, ok)
			}
		}
	}
}

func TestVisitPageDoneFnUnderLatch(t *testing.T) {
	_, log, _, tbl := setup(t)
	tl := logger(log, 1)
	for i := 0; i < 5; i++ {
		tbl.Insert(tl, []byte("r"), nil, nil)
	}
	var order []string
	err := tbl.VisitPage(0, func(rid types.RID, rec []byte) error {
		order = append(order, "rec")
		return nil
	}, func() error {
		order = append(order, "done")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 6 || order[5] != "done" {
		t.Fatalf("order = %v", order)
	}
}

func TestPageMarshalRoundTripProperty(t *testing.T) {
	f := func(recs [][]byte) bool {
		p := NewPage()
		var inserted []int
		for i, r := range recs {
			if len(r) > 512 {
				r = r[:512]
			}
			recs[i] = r
			if _, err := p.Insert(r, nil); err == nil {
				inserted = append(inserted, i)
			}
		}
		if len(inserted) > 2 {
			p.Delete(types.SlotNum(1)) // leave a hole
		}
		img, err := p.MarshalPage()
		if err != nil {
			return false
		}
		var q Page
		if err := q.UnmarshalPage(img); err != nil {
			return false
		}
		if q.NumSlots() != p.NumSlots() {
			return false
		}
		for i := 0; i < p.NumSlots(); i++ {
			a, b := p.Get(types.SlotNum(i)), q.Get(types.SlotNum(i))
			if (a == nil) != (b == nil) || !bytes.Equal(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageFullRejected(t *testing.T) {
	p := NewPage()
	big := bytes.Repeat([]byte{1}, 4000)
	if _, err := p.Insert(big, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Insert(big, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Insert(big, nil); err != ErrPageFull {
		t.Fatalf("third insert = %v, want ErrPageFull", err)
	}
	if _, err := p.Insert(bytes.Repeat([]byte{1}, MaxRecordSize+1), nil); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestReopenRebuildsFreeHints(t *testing.T) {
	fs, log, pool, tbl := setup(t)
	tl := logger(log, 1)
	for i := 0; i < 100; i++ {
		tbl.Insert(tl, bytes.Repeat([]byte{byte(i)}, 200), nil, nil)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	pool2 := buffer.New(fs, log, 64)
	tbl2, err := Open(pool2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// New inserts should go into existing free space, not only new pages.
	before, _ := tbl2.PageCount()
	if _, err := tbl2.Insert(tl, []byte("small"), nil, nil); err != nil {
		t.Fatal(err)
	}
	after, _ := tbl2.PageCount()
	if after != before {
		t.Fatalf("small insert allocated a new page (%d -> %d)", before, after)
	}
}

func TestReadPageBatchMatchesVisitPage(t *testing.T) {
	_, log, _, tbl := setup(t)
	tl := logger(log, 1)
	var rids []types.RID
	for i := 0; i < 300; i++ {
		rid, err := tbl.Insert(tl, bytes.Repeat([]byte{byte(i)}, 50+i%70), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	// Punch holes so batches see free slots interleaved with live records.
	for i := 0; i < len(rids); i += 7 {
		if _, err := tbl.Delete(tl, rids[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	n, err := tbl.PageCount()
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("want multiple pages, got %d", n)
	}
	for pg := types.PageNum(0); pg < n; pg++ {
		type rec struct {
			rid types.RID
			rec []byte
		}
		var visited []rec
		if err := tbl.VisitPage(pg, func(rid types.RID, r []byte) error {
			visited = append(visited, rec{rid, append([]byte(nil), r...)})
			return nil
		}, nil); err != nil {
			t.Fatal(err)
		}
		doneCalls := 0
		batch, err := tbl.ReadPageBatch(pg, func() error { doneCalls++; return nil })
		if err != nil {
			t.Fatal(err)
		}
		if doneCalls != 1 {
			t.Fatalf("doneFn ran %d times", doneCalls)
		}
		if batch.Page != pg {
			t.Fatalf("batch page = %d, want %d", batch.Page, pg)
		}
		if batch.Len() != len(visited) {
			t.Fatalf("page %d: batch has %d records, VisitPage saw %d", pg, batch.Len(), len(visited))
		}
		for i := 0; i < batch.Len(); i++ {
			if batch.RID(i) != visited[i].rid {
				t.Fatalf("page %d record %d: RID %v, want %v", pg, i, batch.RID(i), visited[i].rid)
			}
			if !bytes.Equal(batch.Rec(i), visited[i].rec) {
				t.Fatalf("page %d record %d: bytes differ", pg, i)
			}
		}
	}
}

func TestReadPageBatchIsSnapshot(t *testing.T) {
	_, log, _, tbl := setup(t)
	tl := logger(log, 1)
	rid, err := tbl.Insert(tl, []byte("original"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := tbl.ReadPageBatch(rid.PageID.Page, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Update(tl, rid, []byte("replaced"), nil); err != nil {
		t.Fatal(err)
	}
	if string(batch.Rec(0)) != "original" {
		t.Fatalf("batch mutated under us: %q", batch.Rec(0))
	}
}

func TestReadPageBatchDoneFnError(t *testing.T) {
	_, log, _, tbl := setup(t)
	tl := logger(log, 1)
	if _, err := tbl.Insert(tl, []byte("x"), nil, nil); err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("done failed")
	if _, err := tbl.ReadPageBatch(0, func() error { return wantErr }); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}
