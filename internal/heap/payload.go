package heap

import (
	"onlineindex/internal/enc"
	"onlineindex/internal/types"
)

// InsertPayload is the body of a TypeHeapInsert log record. VisCount is the
// count of indexes visible to the transaction when it performed the update
// (§3.1.2): rollback compares it against the then-current count to find
// indexes that became visible in between.
type InsertPayload struct {
	RID      types.RID
	Rec      []byte
	VisCount uint16
}

// Encode serializes the payload.
func (p *InsertPayload) Encode() []byte {
	return enc.NewWriter().RID(p.RID).U16(p.VisCount).Bytes32(p.Rec).Bytes()
}

// DecodeInsert parses a TypeHeapInsert payload.
func DecodeInsert(b []byte) (InsertPayload, error) {
	r := enc.NewReader(b)
	p := InsertPayload{RID: r.RID(), VisCount: r.U16(), Rec: r.Bytes32()}
	return p, r.Err()
}

// DeletePayload is the body of a TypeHeapDelete log record. Old carries the
// deleted record so undo can restore it.
type DeletePayload struct {
	RID      types.RID
	Old      []byte
	VisCount uint16
}

// Encode serializes the payload.
func (p *DeletePayload) Encode() []byte {
	return enc.NewWriter().RID(p.RID).U16(p.VisCount).Bytes32(p.Old).Bytes()
}

// DecodeDelete parses a TypeHeapDelete payload.
func DecodeDelete(b []byte) (DeletePayload, error) {
	r := enc.NewReader(b)
	p := DeletePayload{RID: r.RID(), VisCount: r.U16(), Old: r.Bytes32()}
	return p, r.Err()
}

// UpdatePayload is the body of a TypeHeapUpdate log record, carrying both
// images.
type UpdatePayload struct {
	RID      types.RID
	Old, New []byte
	VisCount uint16
}

// Encode serializes the payload.
func (p *UpdatePayload) Encode() []byte {
	return enc.NewWriter().RID(p.RID).U16(p.VisCount).Bytes32(p.Old).Bytes32(p.New).Bytes()
}

// DecodeUpdate parses a TypeHeapUpdate payload.
func DecodeUpdate(b []byte) (UpdatePayload, error) {
	r := enc.NewReader(b)
	p := UpdatePayload{RID: r.RID(), VisCount: r.U16(), Old: r.Bytes32(), New: r.Bytes32()}
	return p, r.Err()
}
