package heap

import (
	"fmt"
	"sync"

	"onlineindex/internal/buffer"
	"onlineindex/internal/latch"
	"onlineindex/internal/page"
	"onlineindex/internal/rm"
	"onlineindex/internal/types"
	"onlineindex/internal/wal"
)

// DecideFn is invoked while the data page latch is still held, after the
// target RID is known but before the operation is logged. It returns the
// count of indexes visible to the transaction for this update, which is
// recorded in the log record (§3.1.2). The SF algorithm's transaction layer
// uses the same under-latch window to compare Target-RID against the index
// builder's Current-RID and capture the side-file decision.
type DecideFn func(rid types.RID) (visCount uint16)

// Observer is notified of every record mutation, synchronously, while the
// data page's X latch is still held — the only point where the mutation is
// ordered against every other access to the page. The engine hangs its
// zone-map maintenance here. Callbacks receive the raw record bytes; they
// must be quick and must not touch the buffer pool. Redo during restart
// recovery does NOT notify (recovery rebuilds derived state from scratch).
type Observer interface {
	HeapInsert(page types.PageNum, rec []byte)
	HeapDelete(page types.PageNum, old []byte)
	HeapUpdate(page types.PageNum, old, new []byte)
}

// Table is the record manager for one heap file.
type Table struct {
	pool *buffer.Pool
	file types.FileID

	mu       sync.Mutex
	obs      Observer
	freeHint map[types.PageNum]int // approximate free bytes per page
	lastPage types.PageNum
	havePage bool
}

// SetObserver installs the mutation observer (nil clears it).
func (t *Table) SetObserver(o Observer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.obs = o
}

func (t *Table) observer() Observer {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.obs
}

// Open opens the heap file, scanning existing pages to build the free-space
// hints.
func Open(pool *buffer.Pool, file types.FileID) (*Table, error) {
	t := &Table{pool: pool, file: file, freeHint: make(map[types.PageNum]int)}
	if err := pool.OpenFile(file); err != nil {
		return nil, err
	}
	n, err := pool.PageCount(file)
	if err != nil {
		return nil, err
	}
	for i := types.PageNum(0); i < n; i++ {
		pid := types.PageID{File: file, Page: i}
		err := rm.WithPage(pool, pid, latch.S, func(f *buffer.Frame) error {
			hp, ok := f.Page().(*Page)
			if !ok {
				return fmt.Errorf("heap: page %s is %s, not heap", pid, f.Page().Kind())
			}
			t.freeHint[i] = hp.FreeSpace()
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if n > 0 {
		t.lastPage = n - 1
		t.havePage = true
	}
	return t, nil
}

// FileID returns the table's file ID.
func (t *Table) FileID() types.FileID { return t.file }

// PageCount returns the number of data pages.
func (t *Table) PageCount() (types.PageNum, error) { return t.pool.PageCount(t.file) }

// pickPage returns a page number likely to fit recLen, or ok=false if a new
// page must be allocated.
func (t *Table) pickPage(recLen int) (types.PageNum, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.havePage {
		return 0, false
	}
	if t.freeHint[t.lastPage] >= recLen+slotSize {
		return t.lastPage, true
	}
	for n, free := range t.freeHint {
		if free >= recLen+slotSize {
			return n, true
		}
	}
	return 0, false
}

func (t *Table) setHint(n types.PageNum, free int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.freeHint[n] = free
	if !t.havePage || n > t.lastPage {
		t.lastPage, t.havePage = n, true
	}
}

// allocPage allocates and formats a new data page, logging the format as a
// redo-only record under tl.
func (t *Table) allocPage(tl rm.TxnLogger) (*buffer.Frame, error) {
	f, err := t.pool.NewPage(t.file, NewPage())
	if err != nil {
		return nil, err
	}
	lsn, err := tl.Log(&wal.Record{Type: wal.TypeHeapFormat, Flags: wal.FlagRedo, PageID: f.ID})
	if err != nil {
		t.pool.Unpin(f)
		return nil, err
	}
	f.MarkDirty(lsn)
	return f, nil
}

// insertHeadroom is free space Insert leaves on every page so records can be
// restored in place: rollback of a delete must reinsert the old record at
// its exact RID even if later inserts consumed the freed bytes. The slot
// itself is protected by the engine's conditional record lock (AcceptFn);
// the headroom covers the bytes for the realistic case of a few concurrent
// small-record deleters per page.
const insertHeadroom = 512

// AcceptFn can veto a candidate RID before the insert commits to it; it runs
// under the page X latch. The engine uses it to conditionally X-lock the
// RID, refusing slots whose previous occupant's deleter is still uncommitted.
type AcceptFn func(rid types.RID) bool

// Insert appends rec to the table under tl, returning its RID. accept and
// decide run under the page X latch (see AcceptFn, DecideFn); either may be
// nil.
func (t *Table) Insert(tl rm.TxnLogger, rec []byte, accept AcceptFn, decide DecideFn) (types.RID, error) {
	for attempt := 0; ; attempt++ {
		pageNum, ok := t.pickPage(len(rec))
		var f *buffer.Frame
		var err error
		if !ok {
			if f, err = t.allocPage(tl); err != nil {
				return types.NilRID, err
			}
		} else {
			if f, err = t.pool.Fetch(types.PageID{File: t.file, Page: pageNum}); err != nil {
				return types.NilRID, err
			}
			f.Latch.Acquire(latch.X)
		}
		if !ok {
			f.Latch.Acquire(latch.X)
		}
		hp := f.Page().(*Page)
		if hp.NumRecords() > 0 && hp.FreeSpace()-len(rec)-slotSize < insertHeadroom {
			t.setHint(f.ID.Page, 0) // effectively full for inserts
			f.Latch.Release(latch.X)
			t.pool.Unpin(f)
			if attempt > 1024 {
				return types.NilRID, fmt.Errorf("heap: insert livelock")
			}
			continue
		}
		var acceptSlot func(types.SlotNum) bool
		if accept != nil {
			acceptSlot = func(s types.SlotNum) bool {
				return accept(types.RID{PageID: f.ID, Slot: s})
			}
		}
		slot, ierr := hp.Insert(rec, acceptSlot)
		if ierr == ErrPageFull {
			t.setHint(f.ID.Page, hp.FreeSpace())
			f.Latch.Release(latch.X)
			t.pool.Unpin(f)
			if attempt > 1024 {
				return types.NilRID, fmt.Errorf("heap: insert livelock")
			}
			continue
		}
		if ierr != nil {
			f.Latch.Release(latch.X)
			t.pool.Unpin(f)
			return types.NilRID, ierr
		}
		rid := types.RID{PageID: f.ID, Slot: slot}
		if o := t.observer(); o != nil {
			o.HeapInsert(f.ID.Page, rec)
		}
		var vis uint16
		if decide != nil {
			vis = decide(rid)
		}
		pl := InsertPayload{RID: rid, Rec: rec, VisCount: vis}
		lsn, lerr := tl.Log(&wal.Record{
			Type: wal.TypeHeapInsert, Flags: wal.FlagRedo | wal.FlagUndo,
			PageID: f.ID, Payload: pl.Encode(),
		})
		if lerr != nil {
			f.Latch.Release(latch.X)
			t.pool.Unpin(f)
			return types.NilRID, lerr
		}
		f.MarkDirty(lsn)
		t.setHint(f.ID.Page, hp.FreeSpace())
		f.Latch.Release(latch.X)
		t.pool.Unpin(f)
		return rid, nil
	}
}

// Delete removes the record at rid under tl and returns the old record.
func (t *Table) Delete(tl rm.TxnLogger, rid types.RID, decide DecideFn) ([]byte, error) {
	if rid.PageID.File != t.file {
		return nil, fmt.Errorf("heap: RID %s not in table file %d", rid, t.file)
	}
	var old []byte
	err := rm.WithPage(t.pool, rid.PageID, latch.X, func(f *buffer.Frame) error {
		hp := f.Page().(*Page)
		var vis uint16
		if decide != nil {
			vis = decide(rid)
		}
		o, err := hp.Delete(rid.Slot)
		if err != nil {
			return err
		}
		old = o
		if obs := t.observer(); obs != nil {
			obs.HeapDelete(rid.PageID.Page, o)
		}
		pl := DeletePayload{RID: rid, Old: o, VisCount: vis}
		lsn, err := tl.Log(&wal.Record{
			Type: wal.TypeHeapDelete, Flags: wal.FlagRedo | wal.FlagUndo,
			PageID: rid.PageID, Payload: pl.Encode(),
		})
		if err != nil {
			return err
		}
		f.MarkDirty(lsn)
		t.setHint(rid.PageID.Page, hp.FreeSpace())
		return nil
	})
	return old, err
}

// Update replaces the record at rid under tl and returns the old record.
func (t *Table) Update(tl rm.TxnLogger, rid types.RID, rec []byte, decide DecideFn) ([]byte, error) {
	if rid.PageID.File != t.file {
		return nil, fmt.Errorf("heap: RID %s not in table file %d", rid, t.file)
	}
	var old []byte
	err := rm.WithPage(t.pool, rid.PageID, latch.X, func(f *buffer.Frame) error {
		hp := f.Page().(*Page)
		var vis uint16
		if decide != nil {
			vis = decide(rid)
		}
		o, err := hp.Update(rid.Slot, rec)
		if err != nil {
			return err
		}
		old = o
		if obs := t.observer(); obs != nil {
			obs.HeapUpdate(rid.PageID.Page, o, rec)
		}
		pl := UpdatePayload{RID: rid, Old: o, New: rec, VisCount: vis}
		lsn, err := tl.Log(&wal.Record{
			Type: wal.TypeHeapUpdate, Flags: wal.FlagRedo | wal.FlagUndo,
			PageID: rid.PageID, Payload: pl.Encode(),
		})
		if err != nil {
			return err
		}
		f.MarkDirty(lsn)
		t.setHint(rid.PageID.Page, hp.FreeSpace())
		return nil
	})
	return old, err
}

// Get returns a copy of the record at rid (under an S latch), or ok=false if
// the slot is empty. Locking is the caller's concern.
func (t *Table) Get(rid types.RID) ([]byte, bool, error) {
	var rec []byte
	var ok bool
	err := rm.WithPage(t.pool, rid.PageID, latch.S, func(f *buffer.Frame) error {
		hp, isHeap := f.Page().(*Page)
		if !isHeap {
			return fmt.Errorf("heap: page %s is not a heap page", rid.PageID)
		}
		if r := hp.Get(rid.Slot); r != nil {
			rec = append([]byte(nil), r...)
			ok = true
		}
		return nil
	})
	return rec, ok, err
}

// VisitPage S-latches one data page and streams its live records to recFn in
// slot order; doneFn (if non-nil) runs while the latch is still held, after
// the last record. The index builder's scan uses doneFn to advance its
// Current-RID past the whole page before any transaction can latch it
// (§3.2.2) — this is what makes Target-RID vs Current-RID comparisons
// unambiguous.
func (t *Table) VisitPage(n types.PageNum, recFn func(rid types.RID, rec []byte) error, doneFn func() error) error {
	pid := types.PageID{File: t.file, Page: n}
	return rm.WithPage(t.pool, pid, latch.S, func(f *buffer.Frame) error {
		hp, ok := f.Page().(*Page)
		if !ok {
			return fmt.Errorf("heap: page %s is not a heap page", pid)
		}
		for i := 0; i < hp.NumSlots(); i++ {
			if rec := hp.Get(types.SlotNum(i)); rec != nil {
				if err := recFn(types.RID{PageID: pid, Slot: types.SlotNum(i)}, rec); err != nil {
					return err
				}
			}
		}
		if doneFn != nil {
			return doneFn()
		}
		return nil
	})
}

// PageBatch is the batched form of VisitPage: one data page's live records,
// copied out under the page's S latch so key extraction can run off the
// latch — and on another goroutine — while the scan moves to the next page.
// Slot order is preserved. The records live in one contiguous buffer, so a
// batch costs two allocations regardless of record count.
type PageBatch struct {
	Page types.PageNum
	rids []types.RID
	buf  []byte   // record bytes, concatenated in slot order
	offs []uint32 // len(rids)+1 boundaries into buf
}

// Len returns the number of live records in the batch.
func (b *PageBatch) Len() int { return len(b.rids) }

// RID returns the i-th record's RID.
func (b *PageBatch) RID(i int) types.RID { return b.rids[i] }

// Rec returns the i-th record's bytes (valid for the batch's lifetime; do
// not mutate).
func (b *PageBatch) Rec(i int) []byte { return b.buf[b.offs[i]:b.offs[i+1]] }

// ReadPageBatch S-latches page n and copies its live records into a batch.
// doneFn (if non-nil) runs while the latch is still held, after the copy —
// the same under-latch hook as VisitPage's doneFn, which the index builder
// uses to advance its Current-RID past the whole page before any
// transaction can latch it (§3.2.2). The batch is a snapshot of the page as
// of the latch: every later modification is covered by the build protocols
// (direct maintenance for NSF, the side-file for SF), so extracting keys
// from the copy after the latch is released is equivalent to extracting
// them under it.
func (t *Table) ReadPageBatch(n types.PageNum, doneFn func() error) (PageBatch, error) {
	pid := types.PageID{File: t.file, Page: n}
	batch := PageBatch{Page: n}
	err := rm.WithPage(t.pool, pid, latch.S, func(f *buffer.Frame) error {
		hp, ok := f.Page().(*Page)
		if !ok {
			return fmt.Errorf("heap: page %s is not a heap page", pid)
		}
		nSlots := hp.NumSlots()
		total := 0
		for i := 0; i < nSlots; i++ {
			if rec := hp.Get(types.SlotNum(i)); rec != nil {
				total += len(rec)
			}
		}
		batch.rids = make([]types.RID, 0, hp.NumRecords())
		batch.buf = make([]byte, 0, total)
		batch.offs = make([]uint32, 1, hp.NumRecords()+1)
		for i := 0; i < nSlots; i++ {
			if rec := hp.Get(types.SlotNum(i)); rec != nil {
				batch.rids = append(batch.rids, types.RID{PageID: pid, Slot: types.SlotNum(i)})
				batch.buf = append(batch.buf, rec...)
				batch.offs = append(batch.offs, uint32(len(batch.buf)))
			}
		}
		if doneFn != nil {
			return doneFn()
		}
		return nil
	})
	return batch, err
}

// Scan visits every live record of the table in RID order (ordinary readers;
// the index builder drives VisitPage itself to manage its scan position).
func (t *Table) Scan(fn func(rid types.RID, rec []byte) error) error {
	n, err := t.PageCount()
	if err != nil {
		return err
	}
	for i := types.PageNum(0); i < n; i++ {
		if err := t.VisitPage(i, fn, nil); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Undo (transaction rollback)
// ---------------------------------------------------------------------------

// UndoInsert compensates a TypeHeapInsert record: it deletes the record and
// writes a redo-only CLR (of type TypeHeapDelete). decide runs under the
// page latch so the rollback can evaluate the Fig. 2 visibility logic.
func (t *Table) UndoInsert(tl rm.TxnLogger, pl InsertPayload, undoNext types.LSN, decide DecideFn) error {
	return rm.WithPage(t.pool, pl.RID.PageID, latch.X, func(f *buffer.Frame) error {
		hp := f.Page().(*Page)
		if decide != nil {
			decide(pl.RID)
		}
		old, err := hp.Delete(pl.RID.Slot)
		if err != nil {
			return fmt.Errorf("heap: undo insert %s: %w", pl.RID, err)
		}
		if o := t.observer(); o != nil {
			o.HeapDelete(pl.RID.PageID.Page, old)
		}
		clr := DeletePayload{RID: pl.RID, Old: old, VisCount: pl.VisCount}
		lsn, err := tl.LogCLR(&wal.Record{
			Type: wal.TypeHeapDelete, Flags: wal.FlagRedo,
			PageID: pl.RID.PageID, Payload: clr.Encode(),
		}, undoNext)
		if err != nil {
			return err
		}
		f.MarkDirty(lsn)
		t.setHint(pl.RID.PageID.Page, hp.FreeSpace())
		return nil
	})
}

// UndoDelete compensates a TypeHeapDelete record: it reinserts the old
// record at its original RID and writes a redo-only CLR.
func (t *Table) UndoDelete(tl rm.TxnLogger, pl DeletePayload, undoNext types.LSN, decide DecideFn) error {
	return rm.WithPage(t.pool, pl.RID.PageID, latch.X, func(f *buffer.Frame) error {
		hp := f.Page().(*Page)
		if decide != nil {
			decide(pl.RID)
		}
		if err := hp.InsertAt(pl.RID.Slot, pl.Old); err != nil {
			return fmt.Errorf("heap: undo delete %s: %w", pl.RID, err)
		}
		if o := t.observer(); o != nil {
			o.HeapInsert(pl.RID.PageID.Page, pl.Old)
		}
		clr := InsertPayload{RID: pl.RID, Rec: pl.Old, VisCount: pl.VisCount}
		lsn, err := tl.LogCLR(&wal.Record{
			Type: wal.TypeHeapInsert, Flags: wal.FlagRedo,
			PageID: pl.RID.PageID, Payload: clr.Encode(),
		}, undoNext)
		if err != nil {
			return err
		}
		f.MarkDirty(lsn)
		t.setHint(pl.RID.PageID.Page, hp.FreeSpace())
		return nil
	})
}

// UndoUpdate compensates a TypeHeapUpdate record: it restores the old image
// and writes a redo-only CLR.
func (t *Table) UndoUpdate(tl rm.TxnLogger, pl UpdatePayload, undoNext types.LSN, decide DecideFn) error {
	return rm.WithPage(t.pool, pl.RID.PageID, latch.X, func(f *buffer.Frame) error {
		hp := f.Page().(*Page)
		if decide != nil {
			decide(pl.RID)
		}
		if _, err := hp.Update(pl.RID.Slot, pl.Old); err != nil {
			return fmt.Errorf("heap: undo update %s: %w", pl.RID, err)
		}
		if o := t.observer(); o != nil {
			o.HeapUpdate(pl.RID.PageID.Page, pl.New, pl.Old)
		}
		clr := UpdatePayload{RID: pl.RID, Old: pl.New, New: pl.Old, VisCount: pl.VisCount}
		lsn, err := tl.LogCLR(&wal.Record{
			Type: wal.TypeHeapUpdate, Flags: wal.FlagRedo,
			PageID: pl.RID.PageID, Payload: clr.Encode(),
		}, undoNext)
		if err != nil {
			return err
		}
		f.MarkDirty(lsn)
		return nil
	})
}

// ---------------------------------------------------------------------------
// Redo (restart recovery)
// ---------------------------------------------------------------------------

// Redo applies one heap log record to its page if the page has not already
// seen it (PageLSN < record LSN). It handles TypeHeapFormat, TypeHeapInsert,
// TypeHeapDelete and TypeHeapUpdate, including the CLR variants.
func Redo(pool *buffer.Pool, rec *wal.Record) error {
	f, err := pool.FetchOrCreate(rec.PageID, func() page.Page { return NewPage() }, rec.LSN)
	if err != nil {
		return err
	}
	defer pool.Unpin(f)
	f.Latch.Acquire(latch.X)
	defer f.Latch.Release(latch.X)
	hp, ok := f.Page().(*Page)
	if !ok {
		return fmt.Errorf("heap: redo LSN %d: page %s is %s, not heap", rec.LSN, rec.PageID, f.Page().Kind())
	}
	if hp.PageLSN() >= rec.LSN {
		return nil // already applied
	}
	return applyRedo(f, hp, rec)
}

func applyRedo(f *buffer.Frame, hp *Page, rec *wal.Record) error {
	switch rec.Type {
	case wal.TypeHeapFormat:
		*hp = *NewPage()
	case wal.TypeHeapInsert:
		pl, err := DecodeInsert(rec.Payload)
		if err != nil {
			return err
		}
		if err := hp.InsertAt(pl.RID.Slot, pl.Rec); err != nil {
			return fmt.Errorf("heap: redo insert LSN %d: %w", rec.LSN, err)
		}
	case wal.TypeHeapDelete:
		pl, err := DecodeDelete(rec.Payload)
		if err != nil {
			return err
		}
		if _, err := hp.Delete(pl.RID.Slot); err != nil {
			return fmt.Errorf("heap: redo delete LSN %d: %w", rec.LSN, err)
		}
	case wal.TypeHeapUpdate:
		pl, err := DecodeUpdate(rec.Payload)
		if err != nil {
			return err
		}
		if _, err := hp.Update(pl.RID.Slot, pl.New); err != nil {
			return fmt.Errorf("heap: redo update LSN %d: %w", rec.LSN, err)
		}
	default:
		return fmt.Errorf("heap: redo of unexpected record type %s", rec.Type)
	}
	f.MarkDirty(rec.LSN)
	return nil
}
