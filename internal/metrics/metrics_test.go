package metrics

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(7)
	g.Inc()
	g.Dec()
	g.Add(-3)
	g.Set(42)
	h.Observe(123)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil handles must read zero")
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("y") != nil || r.Histogram("z", ExpBounds(1, 4)) != nil {
		t.Fatalf("nil registry must hand out nil handles")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot must be empty: %+v", s)
	}
}

func TestRegisterOrGet(t *testing.T) {
	r := New()
	a := r.Counter("buffer.hits")
	b := r.Counter("buffer.hits")
	if a != b {
		t.Fatalf("same name must return the same counter")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatalf("shared handle: got %d, want 3", b.Value())
	}
	g1 := r.Gauge("sidefile.backlog")
	g2 := r.Gauge("sidefile.backlog")
	if g1 != g2 {
		t.Fatalf("same name must return the same gauge")
	}
	h1 := r.Histogram("lock.wait_ns", ExpBounds(1000, 8))
	h2 := r.Histogram("lock.wait_ns", nil) // later bounds ignored
	if h1 != h2 {
		t.Fatalf("same name must return the same histogram")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("h", []uint64{10, 100, 1000})
	for _, v := range []uint64{5, 10, 11, 100, 999, 1000, 1001, 1 << 40} {
		h.Observe(v)
	}
	s := r.Snapshot()
	hs := s.Histograms["h"]
	want := []uint64{2, 2, 2, 2} // <=10: {5,10}; <=100: {11,100}; <=1000: {999,1000}; over: {1001, 2^40}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(hs.Buckets), len(want))
	}
	for i := range want {
		if hs.Buckets[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, hs.Buckets[i], want[i], hs)
		}
	}
	if hs.Count != 8 {
		t.Fatalf("count = %d, want 8", hs.Count)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", ExpBounds(1, 10))
	var wg sync.WaitGroup
	const workers, per = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Inc()
				g.Dec()
				h.Observe(uint64(i))
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}

func TestSnapshotJSONAndDiff(t *testing.T) {
	r := New()
	r.Counter("wal.bytes").Add(100)
	r.Gauge("btree.pseudo_deleted").Set(5)
	r.Histogram("lock.wait_ns", ExpBounds(1024, 4)).Observe(2000)
	s1 := r.Snapshot()
	b, err := json.Marshal(s1)
	if err != nil {
		t.Fatalf("snapshot must marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("snapshot must round-trip: %v", err)
	}
	if back.Counter("wal.bytes") != 100 || back.Gauge("btree.pseudo_deleted") != 5 {
		t.Fatalf("round-trip lost values: %s", b)
	}
	r.Counter("wal.bytes").Add(50)
	s2 := r.Snapshot()
	d := s2.Diff(&s1)
	if d.Counter("wal.bytes") != 50 {
		t.Fatalf("diff = %d, want 50", d.Counter("wal.bytes"))
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := New()
	c := r.Counter("bench")
	b.Run("enabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	var nc *Counter
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nc.Inc()
		}
	})
}
