// Package metrics is a dependency-free registry of atomic counters, gauges
// and fixed-bucket histograms for the engine's hot paths.
//
// Design constraints, in order:
//
//  1. Near-zero cost when disabled. Every handle type is safe to use through
//     a nil pointer — Inc/Add/Observe on a nil handle is a predictable
//     branch and nothing else — and a nil *Registry hands out nil handles,
//     so a subsystem instrumented against a disabled registry does one
//     nil-check per event and never touches shared memory.
//  2. Allocation-free on the hot path. Handles are resolved once, at
//     attach time (engine open, index create); Inc/Add/Set/Observe never
//     allocate and never take a lock.
//  3. No dependencies. Only sync/atomic and sort; the JSON snapshot is a
//     plain map for encoding/json at the admin endpoint, built only when a
//     snapshot is requested.
//
// Names are dotted paths, "subsystem.event" (buffer.hits, lock.waits,
// btree.splits). The registry is register-or-get: asking twice for the same
// name returns the same handle, so independent attach sites share counters.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. No-op on a nil handle.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n. No-op on a nil handle.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can move both ways (queue depths, live pseudo-entry
// counts). It is signed: concurrent inc/dec interleavings may transiently
// pass through negative values even when the tracked quantity cannot.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one. No-op on a nil handle.
func (g *Gauge) Inc() {
	if g == nil {
		return
	}
	g.v.Add(1)
}

// Dec subtracts one. No-op on a nil handle.
func (g *Gauge) Dec() {
	if g == nil {
		return
	}
	g.v.Add(-1)
}

// Add adds d (which may be negative). No-op on a nil handle.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Set stores v. No-op on a nil handle.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: bucket i counts observations v with
// v <= Bounds[i]; one extra bucket counts the overflow. Bounds are set at
// registration and never change, so Observe is a binary search over a small
// immutable slice plus one atomic add.
type Histogram struct {
	bounds  []uint64 // sorted ascending
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one observation. No-op on a nil handle.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations (0 on a nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil handle).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// ExpBounds returns n power-of-two bucket bounds starting at first:
// first, first*2, first*4, ... — the fixed bucket layouts the engine uses
// for durations (ns) and sizes.
func ExpBounds(first uint64, n int) []uint64 {
	if first == 0 {
		first = 1
	}
	out := make([]uint64, n)
	v := first
	for i := 0; i < n; i++ {
		out[i] = v
		v *= 2
	}
	return out
}

// Registry holds named instruments. The zero value is NOT ready: use New.
// A nil *Registry is the disabled registry — every lookup returns a nil
// handle and Snapshot returns an empty snapshot.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	ggs   map[string]*Gauge
	hists map[string]*Histogram
}

// New creates an enabled registry.
func New() *Registry {
	return &Registry{
		ctrs:  make(map[string]*Counter),
		ggs:   make(map[string]*Gauge),
		hists: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (the no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.ggs[name]
	if !ok {
		g = &Gauge{}
		r.ggs[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls keep the original bounds). Returns nil on a nil
// registry.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		bs := append([]uint64(nil), bounds...)
		sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
		h = &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}

// HistSnapshot is one histogram in a snapshot.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Bounds  []uint64 `json:"bounds"`
	Buckets []uint64 `json:"buckets"` // len(Bounds)+1; last is overflow
}

// Snapshot is a point-in-time copy of every instrument, shaped for
// encoding/json. Counters and gauges are flat name→value maps; histograms
// carry their bucket layout.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot copies the registry. Values are read instrument-by-instrument
// with atomic loads; the snapshot is consistent per instrument, not across
// instruments (fine for monitoring). An empty snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.ctrs {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.ggs {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistSnapshot{
			Count:  h.count.Load(),
			Sum:    h.sum.Load(),
			Bounds: append([]uint64(nil), h.bounds...),
		}
		for i := range h.buckets {
			hs.Buckets = append(hs.Buckets, h.buckets[i].Load())
		}
		s.Histograms[name] = hs
	}
	return s
}

// Counter returns a counter's value from the snapshot (0 when absent).
func (s *Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns a gauge's value from the snapshot (0 when absent).
func (s *Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Diff returns s - prev for counters (gauges and histograms are copied from
// s): the per-interval view a poller wants.
func (s *Snapshot) Diff(prev *Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, v := range s.Histograms {
		out.Histograms[name] = v
	}
	return out
}

// String renders a snapshot compactly for logs and tests.
func (s Snapshot) String() string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		out += fmt.Sprintf("%s=%d ", n, s.Counters[n])
	}
	return out
}
