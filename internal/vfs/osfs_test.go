package vfs

import (
	"bytes"
	"io"
	"testing"
)

// These tests run the crash-relevant slice of the VFS contract against the
// real OS filesystem (t.TempDir): the semantics the WAL tail parser and the
// recovery path assume — short reads with io.EOF at the tail, zero-filled
// holes, truncate visibility, independent handles aliasing one inode — must
// hold identically on OSFS and MemFS, or the crash sweep (which runs on
// MemFS/faultfs) proves nothing about real disks.

func TestOSFSReadAtTailSemantics(t *testing.T) {
	fs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("wal")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte("abcdef"), 0); err != nil {
		t.Fatal(err)
	}
	// Short read at the tail: data plus io.EOF, exactly like MemFS — the
	// WAL tail parser depends on this to find the torn point.
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 2)
	if n != 4 || err != io.EOF {
		t.Fatalf("tail read = %d, %v; want 4, EOF", n, err)
	}
	if string(buf[:n]) != "cdef" {
		t.Fatalf("tail read %q", buf[:n])
	}
	// Read at and past EOF.
	if n, err := f.ReadAt(buf, 6); n != 0 || err != io.EOF {
		t.Fatalf("read at EOF = %d, %v; want 0, EOF", n, err)
	}
	if n, err := f.ReadAt(buf, 100); n != 0 || err != io.EOF {
		t.Fatalf("read past EOF = %d, %v; want 0, EOF", n, err)
	}
}

func TestOSFSSparseWriteZeroFills(t *testing.T) {
	fs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("pagefile")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte{0xAA}, 8192); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 8193 {
		t.Fatalf("size = %d, want 8193", sz)
	}
	hole := make([]byte, 4096)
	if _, err := f.ReadAt(hole, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hole, make([]byte, 4096)) {
		t.Fatal("hole is not zero-filled")
	}
}

func TestOSFSTruncateDiscardsTail(t *testing.T) {
	fs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("run")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(bytes.Repeat([]byte{0xFF}, 1000), 0); err != nil {
		t.Fatal(err)
	}
	// Shrink (restart repositioning of a reopened sort run), then extend:
	// the reappearing range must be zeros, not the old bytes.
	if err := f.Truncate(100); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 100 {
		t.Fatalf("size after shrink = %d", sz)
	}
	if err := f.Truncate(200); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	if _, err := f.ReadAt(buf, 100); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 100)) {
		t.Fatal("extended range is not zero-filled")
	}
}

func TestOSFSHandlesAliasOneInode(t *testing.T) {
	fs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a, err := fs.Create("shared")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := fs.Open("shared")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := a.WriteAt([]byte("through-a"), 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 9)
	if _, err := b.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(got) != "through-a" {
		t.Fatalf("handle b read %q", got)
	}
}

// TestOSFSCoalescedDurableReopen is the end-to-end slice for the diskbench
// I/O stack: small writes through CoalescingFS(OSFS), Sync, close every
// handle, then reopen through a brand-new OSFS (fresh fd, no shared state)
// and verify every byte landed. Sync flushing the pending buffer before
// fsync is exactly the property that keeps the engine's durability contract
// intact under coalescing.
func TestOSFSCoalescedDurableReopen(t *testing.T) {
	dir := t.TempDir()
	osfs, err := NewOSFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewCoalescingFS(osfs, 1<<15)
	f, err := fs.Create("wal")
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for i := 0; i < 500; i++ {
		rec := bytes.Repeat([]byte{byte(i * 7)}, 53)
		if _, err := f.WriteAt(rec, int64(len(want))); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec...)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := NewOSFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	g, err := reopened.Open("wal")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	sz, err := g.Size()
	if err != nil || sz != int64(len(want)) {
		t.Fatalf("reopened size = %d, %v; want %d", sz, err, len(want))
	}
	got := make([]byte, sz)
	if _, err := g.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("durable bytes diverge from the coalesced write sequence")
	}
}
