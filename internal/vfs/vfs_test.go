package vfs

import (
	"errors"
	"io"
	"os"
	"testing"
)

func TestMemFSCreateWriteRead(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello world"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 6); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Fatalf("read %q, want %q", buf, "world")
	}
	sz, err := f.Size()
	if err != nil || sz != 11 {
		t.Fatalf("size = %d, %v; want 11", sz, err)
	}
}

func TestMemFSSparseWrite(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("a")
	if _, err := f.WriteAt([]byte("x"), 100); err != nil {
		t.Fatal(err)
	}
	sz, _ := f.Size()
	if sz != 101 {
		t.Fatalf("size = %d, want 101", sz)
	}
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, 50); err != nil || buf[0] != 0 {
		t.Fatalf("hole read = %v %v, want zero byte", buf, err)
	}
}

func TestMemFSReadAtEOF(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("a")
	f.WriteAt([]byte("abc"), 0)
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if n != 3 || err != io.EOF {
		t.Fatalf("short read = %d, %v; want 3, EOF", n, err)
	}
	if _, err := f.ReadAt(buf, 3); err != io.EOF {
		t.Fatalf("read at EOF = %v, want EOF", err)
	}
}

func TestMemFSCrashLosesUnsynced(t *testing.T) {
	fs := NewMemFS()

	// synced file with an unsynced tail
	f, _ := fs.Create("synced")
	f.WriteAt([]byte("durable"), 0)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("volatile!!"), 0) // overwrite, never synced

	// never-synced file
	g, _ := fs.Create("unsynced")
	g.WriteAt([]byte("gone"), 0)

	fs.Crash()

	if _, err := fs.Open("synced"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open during crash = %v, want ErrCrashed", err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle read = %v, want ErrCrashed", err)
	}

	fs.Recover()

	if ok, _ := fs.Exists("unsynced"); ok {
		t.Error("unsynced file survived crash")
	}
	f2, err := fs.Open("synced")
	if err != nil {
		t.Fatal(err)
	}
	sz, _ := f2.Size()
	buf := make([]byte, sz)
	f2.ReadAt(buf, 0)
	if string(buf) != "durable" {
		t.Fatalf("after crash content = %q, want %q", buf, "durable")
	}
}

func TestMemFSCrashTruncateNotDurable(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("a")
	f.WriteAt([]byte("0123456789"), 0)
	f.Sync()
	f.Truncate(3) // volatile truncate only
	fs.Crash()
	fs.Recover()
	f2, _ := fs.Open("a")
	sz, _ := f2.Size()
	if sz != 10 {
		t.Fatalf("size after crash = %d, want 10 (truncate was volatile)", sz)
	}
}

func TestMemFSTruncateExtend(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("a")
	f.WriteAt([]byte("abc"), 0)
	if err := f.Truncate(6); err != nil {
		t.Fatal(err)
	}
	sz, _ := f.Size()
	if sz != 6 {
		t.Fatalf("size = %d, want 6", sz)
	}
	if err := f.Truncate(2); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	f.ReadAt(buf, 0)
	if string(buf) != "ab" {
		t.Fatalf("content = %q, want ab", buf)
	}
}

func TestMemFSRemoveAndList(t *testing.T) {
	fs := NewMemFS()
	fs.Create("b")
	fs.Create("a")
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("list = %v", names)
	}
	if err := fs.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := fs.Exists("a"); ok {
		t.Error("removed file still exists")
	}
	if err := fs.Remove("a"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("double remove = %v, want ErrNotExist", err)
	}
	if _, err := fs.Open("a"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("open missing = %v, want ErrNotExist", err)
	}
}

func TestMemFSClosedHandle(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("a")
	f.Close()
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("write on closed = %v, want ErrClosed", err)
	}
}

func TestMemFSStats(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("a")
	f.WriteAt(make([]byte, 100), 0)
	f.ReadAt(make([]byte, 40), 0)
	f.Sync()
	st := fs.Stats()
	if st.Writes != 1 || st.Reads != 1 || st.Syncs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesWrite != 100 || st.BytesRead != 40 {
		t.Fatalf("byte stats = %+v", st)
	}
	fs.ResetStats()
	if st := fs.Stats(); st.Writes != 0 {
		t.Fatalf("after reset stats = %+v", st)
	}
}

func TestOSFS(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewOSFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("data")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("persist"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	g, err := fs.Open("data")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	sz, _ := g.Size()
	buf := make([]byte, sz)
	g.ReadAt(buf, 0)
	if string(buf) != "persist" {
		t.Fatalf("content = %q", buf)
	}
	names, _ := fs.List()
	if len(names) != 1 || names[0] != "data" {
		t.Fatalf("list = %v", names)
	}
	if ok, _ := fs.Exists("data"); !ok {
		t.Error("Exists = false")
	}
	if err := fs.Remove("data"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := fs.Exists("data"); ok {
		t.Error("file not removed")
	}
}

// TestMemFSPostCrashErrors audits every error path after Crash: each
// operation — through a pre-crash handle or at the FS level — must fail with
// ErrCrashed, and pre-crash handles stay fenced even after Recover (the dead
// incarnation's I/O must never reach the recovered disks).
func TestMemFSPostCrashErrors(t *testing.T) {
	setup := func() (*MemFS, File) {
		fs := NewMemFS()
		f, err := fs.Create("a")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte("payload"), 0); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		fs.Crash()
		return fs, f
	}

	handleOps := []struct {
		name string
		op   func(f File) error
	}{
		{"ReadAt", func(f File) error { _, err := f.ReadAt(make([]byte, 1), 0); return err }},
		{"WriteAt", func(f File) error { _, err := f.WriteAt([]byte("x"), 0); return err }},
		{"Sync", func(f File) error { return f.Sync() }},
		{"Truncate", func(f File) error { return f.Truncate(0) }},
		{"Size", func(f File) error { _, err := f.Size(); return err }},
	}
	for _, tc := range handleOps {
		t.Run("handle/"+tc.name, func(t *testing.T) {
			fs, f := setup()
			if err := tc.op(f); !errors.Is(err, ErrCrashed) {
				t.Fatalf("%s on pre-crash handle = %v, want ErrCrashed", tc.name, err)
			}
			// The fence is generational, not just the crashed flag: after
			// Recover the old handle must still be dead while new handles work.
			fs.Recover()
			if err := tc.op(f); !errors.Is(err, ErrCrashed) {
				t.Fatalf("%s on pre-crash handle after Recover = %v, want ErrCrashed", tc.name, err)
			}
			nf, err := fs.Open("a")
			if err != nil {
				t.Fatalf("open after Recover: %v", err)
			}
			if err := tc.op(nf); errors.Is(err, ErrCrashed) {
				t.Fatalf("%s on post-Recover handle still fenced", tc.name)
			}
		})
	}

	fsOps := []struct {
		name string
		op   func(fs *MemFS) error
	}{
		{"Create", func(fs *MemFS) error { _, err := fs.Create("b"); return err }},
		{"Open", func(fs *MemFS) error { _, err := fs.Open("a"); return err }},
		{"Remove", func(fs *MemFS) error { return fs.Remove("a") }},
		{"Exists", func(fs *MemFS) error { _, err := fs.Exists("a"); return err }},
		{"List", func(fs *MemFS) error { _, err := fs.List(); return err }},
	}
	for _, tc := range fsOps {
		t.Run("fs/"+tc.name, func(t *testing.T) {
			fs, _ := setup()
			if err := tc.op(fs); !errors.Is(err, ErrCrashed) {
				t.Fatalf("%s while crashed = %v, want ErrCrashed", tc.name, err)
			}
			fs.Recover()
			if err := tc.op(fs); errors.Is(err, ErrCrashed) {
				t.Fatalf("%s after Recover still returns ErrCrashed", tc.name)
			}
		})
	}
}

// TestMemFSCrashTornSyncedFile: a torn crash persists exactly the chosen
// prefix of a synced file's unsynced range and nothing beyond it.
func TestMemFSCrashTornSyncedFile(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("00000000"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("11111111"), 8); err != nil {
		t.Fatal(err)
	}
	var gotLo, gotHi int64
	fs.CrashTorn(func(name string, lo, hi int64) int64 {
		gotLo, gotHi = lo, hi
		return lo + 3
	})
	if gotLo != 8 || gotHi != 16 {
		t.Fatalf("chooser saw range [%d,%d), want [8,16)", gotLo, gotHi)
	}
	fs.Recover()
	nf, err := fs.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	sz, _ := nf.Size()
	if sz != 11 {
		t.Fatalf("size after torn crash = %d, want 11 (8 synced + 3 torn)", sz)
	}
	buf := make([]byte, sz)
	if _, err := nf.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "00000000111" {
		t.Fatalf("torn image = %q, want %q", buf, "00000000111")
	}
}

// TestMemFSCrashTornUnsyncedFile: for a never-synced file the whole volatile
// image is in flight; a non-empty cut makes the file (and its torn prefix)
// durable, a zero cut makes it vanish as in a clean crash.
func TestMemFSCrashTornUnsyncedFile(t *testing.T) {
	for _, cutBytes := range []int64{0, 5} {
		fs := NewMemFS()
		f, err := fs.Create("u")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte("abcdefgh"), 0); err != nil {
			t.Fatal(err)
		}
		fs.CrashTorn(func(name string, lo, hi int64) int64 { return lo + cutBytes })
		fs.Recover()
		ok, err := fs.Exists("u")
		if err != nil {
			t.Fatal(err)
		}
		if want := cutBytes > 0; ok != want {
			t.Fatalf("cut=%d: exists=%v, want %v", cutBytes, ok, want)
		}
		if cutBytes > 0 {
			nf, err := fs.Open("u")
			if err != nil {
				t.Fatal(err)
			}
			sz, _ := nf.Size()
			buf := make([]byte, sz)
			if _, err := nf.ReadAt(buf, 0); err != nil {
				t.Fatal(err)
			}
			if string(buf) != "abcde" {
				t.Fatalf("cut=%d: image %q, want %q", cutBytes, buf, "abcde")
			}
		}
	}
}

// TestMemFSCrashTornShrunkFile: a file truncated (shrunk) since its last
// sync keeps clean-crash semantics under CrashTorn — the volatile truncate
// never reaches the durable image.
func TestMemFSCrashTornShrunkFile(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("longcontent"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("XY"), 4); err != nil {
		t.Fatal(err)
	}
	called := false
	fs.CrashTorn(func(name string, lo, hi int64) int64 { called = true; return hi })
	if called {
		t.Fatal("chooser called for a shrunk file; tearing must not apply")
	}
	fs.Recover()
	nf, err := fs.Open("s")
	if err != nil {
		t.Fatal(err)
	}
	sz, _ := nf.Size()
	buf := make([]byte, sz)
	if _, err := nf.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "longcontent" {
		t.Fatalf("shrunk file after torn crash = %q, want last synced image", buf)
	}
}
