package vfs

import (
	"errors"
	"io"
	"os"
	"testing"
)

func TestMemFSCreateWriteRead(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello world"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 6); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Fatalf("read %q, want %q", buf, "world")
	}
	sz, err := f.Size()
	if err != nil || sz != 11 {
		t.Fatalf("size = %d, %v; want 11", sz, err)
	}
}

func TestMemFSSparseWrite(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("a")
	if _, err := f.WriteAt([]byte("x"), 100); err != nil {
		t.Fatal(err)
	}
	sz, _ := f.Size()
	if sz != 101 {
		t.Fatalf("size = %d, want 101", sz)
	}
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, 50); err != nil || buf[0] != 0 {
		t.Fatalf("hole read = %v %v, want zero byte", buf, err)
	}
}

func TestMemFSReadAtEOF(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("a")
	f.WriteAt([]byte("abc"), 0)
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if n != 3 || err != io.EOF {
		t.Fatalf("short read = %d, %v; want 3, EOF", n, err)
	}
	if _, err := f.ReadAt(buf, 3); err != io.EOF {
		t.Fatalf("read at EOF = %v, want EOF", err)
	}
}

func TestMemFSCrashLosesUnsynced(t *testing.T) {
	fs := NewMemFS()

	// synced file with an unsynced tail
	f, _ := fs.Create("synced")
	f.WriteAt([]byte("durable"), 0)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte("volatile!!"), 0) // overwrite, never synced

	// never-synced file
	g, _ := fs.Create("unsynced")
	g.WriteAt([]byte("gone"), 0)

	fs.Crash()

	if _, err := fs.Open("synced"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open during crash = %v, want ErrCrashed", err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle read = %v, want ErrCrashed", err)
	}

	fs.Recover()

	if ok, _ := fs.Exists("unsynced"); ok {
		t.Error("unsynced file survived crash")
	}
	f2, err := fs.Open("synced")
	if err != nil {
		t.Fatal(err)
	}
	sz, _ := f2.Size()
	buf := make([]byte, sz)
	f2.ReadAt(buf, 0)
	if string(buf) != "durable" {
		t.Fatalf("after crash content = %q, want %q", buf, "durable")
	}
}

func TestMemFSCrashTruncateNotDurable(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("a")
	f.WriteAt([]byte("0123456789"), 0)
	f.Sync()
	f.Truncate(3) // volatile truncate only
	fs.Crash()
	fs.Recover()
	f2, _ := fs.Open("a")
	sz, _ := f2.Size()
	if sz != 10 {
		t.Fatalf("size after crash = %d, want 10 (truncate was volatile)", sz)
	}
}

func TestMemFSTruncateExtend(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("a")
	f.WriteAt([]byte("abc"), 0)
	if err := f.Truncate(6); err != nil {
		t.Fatal(err)
	}
	sz, _ := f.Size()
	if sz != 6 {
		t.Fatalf("size = %d, want 6", sz)
	}
	if err := f.Truncate(2); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	f.ReadAt(buf, 0)
	if string(buf) != "ab" {
		t.Fatalf("content = %q, want ab", buf)
	}
}

func TestMemFSRemoveAndList(t *testing.T) {
	fs := NewMemFS()
	fs.Create("b")
	fs.Create("a")
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("list = %v", names)
	}
	if err := fs.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := fs.Exists("a"); ok {
		t.Error("removed file still exists")
	}
	if err := fs.Remove("a"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("double remove = %v, want ErrNotExist", err)
	}
	if _, err := fs.Open("a"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("open missing = %v, want ErrNotExist", err)
	}
}

func TestMemFSClosedHandle(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("a")
	f.Close()
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("write on closed = %v, want ErrClosed", err)
	}
}

func TestMemFSStats(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("a")
	f.WriteAt(make([]byte, 100), 0)
	f.ReadAt(make([]byte, 40), 0)
	f.Sync()
	st := fs.Stats()
	if st.Writes != 1 || st.Reads != 1 || st.Syncs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesWrite != 100 || st.BytesRead != 40 {
		t.Fatalf("byte stats = %+v", st)
	}
	fs.ResetStats()
	if st := fs.Stats(); st.Writes != 0 {
		t.Fatalf("after reset stats = %+v", st)
	}
}

func TestOSFS(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewOSFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("data")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("persist"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	g, err := fs.Open("data")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	sz, _ := g.Size()
	buf := make([]byte, sz)
	g.ReadAt(buf, 0)
	if string(buf) != "persist" {
		t.Fatalf("content = %q", buf)
	}
	names, _ := fs.List()
	if len(names) != 1 || names[0] != "data" {
		t.Fatalf("list = %v", names)
	}
	if ok, _ := fs.Exists("data"); !ok {
		t.Error("Exists = false")
	}
	if err := fs.Remove("data"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := fs.Exists("data"); ok {
		t.Error("file not removed")
	}
}
