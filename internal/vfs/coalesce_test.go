package vfs

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// TestCoalesceSequentialWrites verifies the core contract: many small
// sequential writes reach the inner FS as few large ones, with identical
// visible content before and after the flush.
func TestCoalesceSequentialWrites(t *testing.T) {
	inner := NewMemFS()
	fs := NewCoalescingFS(inner, 1<<16)
	f, err := fs.Create("log")
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for i := 0; i < 1000; i++ {
		chunk := bytes.Repeat([]byte{byte(i)}, 37)
		if _, err := f.WriteAt(chunk, int64(len(want))); err != nil {
			t.Fatal(err)
		}
		want = append(want, chunk...)
	}
	// Size must include the pending (unflushed) tail.
	if sz, err := f.Size(); err != nil || sz != int64(len(want)) {
		t.Fatalf("Size = %d, %v; want %d", sz, err, len(want))
	}
	// Reads must see buffered bytes (flush-on-overlap).
	got := make([]byte, len(want))
	if _, err := f.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("content diverges from write sequence")
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	st := inner.Stats()
	// 1000 writes of 37 bytes with a 64 KiB buffer should collapse to a
	// handful of inner writes (37000/65536 rounds to ~1, plus the
	// flush-on-read). Allow slack but reject pass-through behavior.
	if st.Writes > 20 {
		t.Fatalf("inner saw %d writes for 1000 coalesced WriteAts", st.Writes)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCoalesceSharedAcrossHandles checks that two handles onto one name share
// the pending buffer: bytes buffered through one handle are visible through
// the other, matching the inode aliasing of the inner FS.
func TestCoalesceSharedAcrossHandles(t *testing.T) {
	fs := NewCoalescingFS(NewMemFS(), DefaultCoalesceSize)
	a, err := fs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	b, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.WriteAt([]byte("pending bytes"), 0); err != nil {
		t.Fatal(err)
	}
	if sz, _ := b.Size(); sz != 13 {
		t.Fatalf("second handle Size = %d, want 13", sz)
	}
	got := make([]byte, 13)
	if _, err := b.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(got) != "pending bytes" {
		t.Fatalf("second handle read %q", got)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// With both handles closed the state is gone; a fresh handle reads the
	// flushed bytes from the inner file.
	c, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(got) != "pending bytes" {
		t.Fatalf("post-close read %q", got)
	}
}

// TestCoalesceDifferential drives the same deterministic pseudo-random op
// sequence against a bare MemFS and a CoalescingFS-wrapped MemFS and demands
// byte-identical observations at every step. This is the layer's correctness
// oracle: coalescing must be invisible to any caller.
func TestCoalesceDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	plain := NewMemFS()
	wrapped := NewCoalescingFS(NewMemFS(), 4096) // small buffer: many flush boundaries

	pf, err := plain.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	wf, err := wrapped.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	var end int64
	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // sequential append (the coalesced case)
			n := 1 + rng.Intn(300)
			p := make([]byte, n)
			rng.Read(p)
			if _, err := pf.WriteAt(p, end); err != nil {
				t.Fatalf("step %d: plain write: %v", step, err)
			}
			if _, err := wf.WriteAt(p, end); err != nil {
				t.Fatalf("step %d: wrapped write: %v", step, err)
			}
			end += int64(n)
		case op < 7: // random-offset overwrite (degrades to pass-through)
			if end == 0 {
				continue
			}
			off := rng.Int63n(end + 64)
			n := 1 + rng.Intn(100)
			p := make([]byte, n)
			rng.Read(p)
			if _, err := pf.WriteAt(p, off); err != nil {
				t.Fatalf("step %d: plain write: %v", step, err)
			}
			if _, err := wf.WriteAt(p, off); err != nil {
				t.Fatalf("step %d: wrapped write: %v", step, err)
			}
			if e := off + int64(n); e > end {
				end = e
			}
		case op < 9: // read a random window, compare bytes and result
			off := rng.Int63n(end + 32)
			n := 1 + rng.Intn(200)
			bp := make([]byte, n)
			bw := make([]byte, n)
			np, errp := pf.ReadAt(bp, off)
			nw, errw := wf.ReadAt(bw, off)
			if np != nw || (errp == nil) != (errw == nil) {
				t.Fatalf("step %d: ReadAt(%d,%d) = (%d,%v) vs (%d,%v)", step, off, n, np, errp, nw, errw)
			}
			if !bytes.Equal(bp[:np], bw[:nw]) {
				t.Fatalf("step %d: ReadAt(%d,%d) contents diverge", step, off, n)
			}
		default: // size / sync / truncate
			switch rng.Intn(3) {
			case 0:
				sp, errp := pf.Size()
				sw, errw := wf.Size()
				if sp != sw || (errp == nil) != (errw == nil) {
					t.Fatalf("step %d: Size = (%d,%v) vs (%d,%v)", step, sp, errp, sw, errw)
				}
			case 1:
				if err := pf.Sync(); err != nil {
					t.Fatal(err)
				}
				if err := wf.Sync(); err != nil {
					t.Fatal(err)
				}
			case 2:
				if end == 0 {
					continue
				}
				sz := rng.Int63n(end + 1)
				if err := pf.Truncate(sz); err != nil {
					t.Fatal(err)
				}
				if err := wf.Truncate(sz); err != nil {
					t.Fatal(err)
				}
				end = sz
			}
		}
	}
	// Final byte-for-byte comparison.
	sp, _ := pf.Size()
	sw, _ := wf.Size()
	if sp != sw {
		t.Fatalf("final sizes diverge: %d vs %d", sp, sw)
	}
	bp := make([]byte, sp)
	bw := make([]byte, sw)
	if _, err := pf.ReadAt(bp, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if _, err := wf.ReadAt(bw, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(bp, bw) {
		t.Fatal("final contents diverge")
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wf.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCoalesceCreateDropsStaleState ensures re-Creating a name discards any
// pending bytes from a previous handle generation instead of flushing them
// into the truncated file.
func TestCoalesceCreateDropsStaleState(t *testing.T) {
	fs := NewCoalescingFS(NewMemFS(), DefaultCoalesceSize)
	a, _ := fs.Create("f")
	if _, err := a.WriteAt([]byte("stale"), 0); err != nil {
		t.Fatal(err)
	}
	// Recreate while the old handle still has pending bytes.
	b, err := fs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteAt([]byte("new"), 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	n, _ := b.ReadAt(got, 0)
	if string(got[:n]) != "new" {
		t.Fatalf("content = %q, want %q", got[:n], "new")
	}
	a.Close()
	b.Close()
}
