package vfs

import "sync"

// CoalescingFS wraps an inner FS with per-file write coalescing: strictly
// sequential WriteAt calls accumulate in a contiguous buffer and reach the
// inner file as one large WriteAt, so append-heavy flows (WAL appends, sort
// run spills, index flush snapshots) stop paying one syscall per small
// write. Durability is unchanged — Sync always flushes the pending buffer
// before forcing the inner file, so everything the engine considers durable
// really went through the inner file first — and read-your-writes is
// preserved: a ReadAt that could observe the buffered region flushes it
// first.
//
// The buffer state is shared per file *name*, not per handle, so two open
// handles onto one file (which alias the same inode on OSFS and the same
// memFile on MemFS) see each other's pending writes through the same flush
// discipline.
//
// MemFS already coalesces internally (a write is a memcpy), so wrapping it
// is pointless but harmless; the crash sweep runs on bare MemFS/faultfs and
// is untouched by this layer.
type CoalescingFS struct {
	inner   FS
	bufSize int

	mu     sync.Mutex
	states map[string]*coalState
}

// DefaultCoalesceSize is the pending-buffer cap used when NewCoalescingFS is
// given a non-positive size: large enough to turn page-sized writes into
// MB-scale ones, small enough to be irrelevant next to the buffer pool.
const DefaultCoalesceSize = 1 << 20

// coalState is one file's shared pending write buffer: the contiguous byte
// range [off, off+len(buf)) not yet written through. refs counts open
// handles; the state dies with the last one.
type coalState struct {
	mu   sync.Mutex
	buf  []byte
	off  int64
	refs int
}

// NewCoalescingFS wraps inner with write coalescing. bufSize <= 0 selects
// DefaultCoalesceSize.
func NewCoalescingFS(inner FS, bufSize int) *CoalescingFS {
	if bufSize <= 0 {
		bufSize = DefaultCoalesceSize
	}
	return &CoalescingFS{inner: inner, bufSize: bufSize, states: make(map[string]*coalState)}
}

func (fs *CoalescingFS) attach(name string, f File) File {
	fs.mu.Lock()
	st, ok := fs.states[name]
	if !ok {
		st = &coalState{}
		fs.states[name] = st
	}
	st.refs++
	fs.mu.Unlock()
	return &coalFile{fs: fs, name: name, inner: f, st: st}
}

func (fs *CoalescingFS) detach(name string, st *coalState) {
	fs.mu.Lock()
	st.refs--
	if st.refs == 0 {
		delete(fs.states, name)
	}
	fs.mu.Unlock()
}

// Create implements FS. Creating truncates, so any pending state from a
// prior incarnation of the name is dropped.
func (fs *CoalescingFS) Create(name string) (File, error) {
	f, err := fs.inner.Create(name)
	if err != nil {
		return nil, err
	}
	h := fs.attach(name, f)
	ch := h.(*coalFile)
	ch.st.mu.Lock()
	ch.st.buf = ch.st.buf[:0]
	ch.st.off = 0
	ch.st.mu.Unlock()
	return h, nil
}

// Open implements FS.
func (fs *CoalescingFS) Open(name string) (File, error) {
	f, err := fs.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return fs.attach(name, f), nil
}

// Remove implements FS. Pending writes to a removed file are moot and are
// simply dropped with the name.
func (fs *CoalescingFS) Remove(name string) error {
	fs.mu.Lock()
	if st, ok := fs.states[name]; ok {
		st.mu.Lock()
		st.buf = st.buf[:0]
		st.mu.Unlock()
	}
	fs.mu.Unlock()
	return fs.inner.Remove(name)
}

// Exists implements FS.
func (fs *CoalescingFS) Exists(name string) (bool, error) { return fs.inner.Exists(name) }

// List implements FS.
func (fs *CoalescingFS) List() ([]string, error) { return fs.inner.List() }

// coalFile is one handle onto a coalesced file. All handles onto the same
// name share st; inner writes go through whichever handle performs the
// flush (same inode either way).
type coalFile struct {
	fs    *CoalescingFS
	name  string
	inner File
	st    *coalState
}

// flushLocked writes the pending buffer through. Caller holds st.mu.
func (c *coalFile) flushLocked() error {
	if len(c.st.buf) == 0 {
		return nil
	}
	if _, err := c.inner.WriteAt(c.st.buf, c.st.off); err != nil {
		return err
	}
	c.st.off += int64(len(c.st.buf))
	c.st.buf = c.st.buf[:0]
	return nil
}

func (c *coalFile) WriteAt(p []byte, off int64) (int, error) {
	c.st.mu.Lock()
	defer c.st.mu.Unlock()
	st := c.st
	if off != st.off+int64(len(st.buf)) {
		// Not a continuation of the buffered region: write the pending bytes
		// through and restart the buffer at the new offset. Correctness never
		// depends on coalescing, so non-sequential patterns (concurrent WAL
		// reservations landing out of order, page rewrites) just degrade to
		// pass-through.
		if err := c.flushLocked(); err != nil {
			return 0, err
		}
		st.off = off
	}
	st.buf = append(st.buf, p...)
	if len(st.buf) >= c.fs.bufSize {
		if err := c.flushLocked(); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

func (c *coalFile) ReadAt(p []byte, off int64) (int, error) {
	c.st.mu.Lock()
	// Only a read entirely below the buffered region can safely bypass the
	// pending bytes; anything at or past st.off (including reads beyond the
	// inner EOF that the buffer would extend) must see them.
	if len(c.st.buf) > 0 && off+int64(len(p)) > c.st.off {
		if err := c.flushLocked(); err != nil {
			c.st.mu.Unlock()
			return 0, err
		}
	}
	c.st.mu.Unlock()
	return c.inner.ReadAt(p, off)
}

func (c *coalFile) Size() (int64, error) {
	c.st.mu.Lock()
	pendingEnd := c.st.off + int64(len(c.st.buf))
	pending := len(c.st.buf) > 0
	c.st.mu.Unlock()
	size, err := c.inner.Size()
	if err != nil {
		return 0, err
	}
	if pending && pendingEnd > size {
		size = pendingEnd
	}
	return size, nil
}

func (c *coalFile) Sync() error {
	c.st.mu.Lock()
	if err := c.flushLocked(); err != nil {
		c.st.mu.Unlock()
		return err
	}
	c.st.mu.Unlock()
	return c.inner.Sync()
}

func (c *coalFile) Truncate(size int64) error {
	c.st.mu.Lock()
	if err := c.flushLocked(); err != nil {
		c.st.mu.Unlock()
		return err
	}
	c.st.mu.Unlock()
	return c.inner.Truncate(size)
}

func (c *coalFile) Close() error {
	c.st.mu.Lock()
	err := c.flushLocked()
	c.st.mu.Unlock()
	c.fs.detach(c.name, c.st)
	if cerr := c.inner.Close(); err == nil {
		err = cerr
	}
	return err
}

func (c *coalFile) Name() string { return c.inner.Name() }

// AdviseSequential forwards the readahead hint to the inner file.
func (c *coalFile) AdviseSequential() { Advise(c.inner) }

// ---------------------------------------------------------------------------
// sequential readahead hints
// ---------------------------------------------------------------------------

// SequentialReader is an optional File extension: AdviseSequential hints
// that the file is about to be read front to back, letting the backend ask
// the OS for aggressive readahead (posix_fadvise on Linux). Purely advisory;
// implementations must not change any visible state.
type SequentialReader interface {
	AdviseSequential()
}

// Advise issues the sequential-read hint if f's backend supports it. Safe to
// call on any File — a no-op otherwise.
func Advise(f File) {
	if s, ok := f.(SequentialReader); ok {
		s.AdviseSequential()
	}
}

// AdviseSequential implements SequentialReader for OS files.
func (o *osFile) AdviseSequential() { fadviseSequential(o.f.Fd()) }
