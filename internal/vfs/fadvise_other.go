//go:build !linux

package vfs

// fadviseSequential is a no-op where posix_fadvise is unavailable.
func fadviseSequential(uintptr) {}
