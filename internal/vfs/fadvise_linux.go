//go:build linux

package vfs

import "syscall"

// posixFadvSequential is POSIX_FADV_SEQUENTIAL: the application expects to
// read the whole file front to back, so the kernel may double its readahead
// window.
const posixFadvSequential = 2

// fadviseSequential hints sequential access over the whole file. Advisory
// only — errors (e.g. on pipes) are deliberately ignored.
func fadviseSequential(fd uintptr) {
	syscall.Syscall6(syscall.SYS_FADVISE64, fd, 0, 0, posixFadvSequential, 0, 0) //nolint:errcheck
}
