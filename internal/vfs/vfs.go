// Package vfs provides the virtual file system the engine stores everything
// on: the write-ahead log, heap table files, index files, side-files and
// external-sort run files.
//
// Two implementations are provided. MemFS simulates stable storage with
// realistic crash semantics: writes go to a volatile buffer and only reach
// the durable image when Sync is called, so a simulated system failure
// (Crash) discards everything that was never forced. OSFS wraps the host
// file system for the runnable examples. All crash/restart experiments in
// the benchmark harness run on MemFS.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a closed file or file system.
var ErrClosed = errors.New("vfs: closed")

// ErrCrashed is returned by operations attempted after MemFS.Crash until the
// file system is reopened with Recover.
var ErrCrashed = errors.New("vfs: file system crashed")

// File is a random-access durable file.
//
// WriteAt and Truncate affect the volatile image immediately; the durable
// image only changes on Sync. ReadAt reads the volatile image (the OS page
// cache analogue): readers within one incarnation of the system see their
// own writes whether or not they have been forced.
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Closer
	// Size returns the current (volatile) size of the file in bytes.
	Size() (int64, error)
	// Sync forces all volatile writes to the durable image.
	Sync() error
	// Truncate sets the volatile size of the file.
	Truncate(size int64) error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is a minimal file system interface: flat namespace of named files.
type FS interface {
	// Create creates or truncates the named file and opens it.
	Create(name string) (File, error)
	// Open opens an existing file for read/write.
	Open(name string) (File, error)
	// Remove deletes the named file.
	Remove(name string) error
	// Exists reports whether the named file exists.
	Exists(name string) (bool, error)
	// List returns the names of all files, sorted.
	List() ([]string, error)
}

// ---------------------------------------------------------------------------
// MemFS
// ---------------------------------------------------------------------------

// memFile holds a volatile and a durable byte image of one file. Sync
// copies only the dirty byte range, so forcing an append-only log is O(new
// bytes), not O(file) — without this, every commit would recopy the whole
// log and the engine would be quadratic in log size.
type memFile struct {
	name    string
	volatle []byte // current (page-cache) contents
	durable []byte // contents that survive a crash
	synced  bool   // whether the file's *existence* is durable
	dirtyLo int64  // dirty range [dirtyLo, dirtyHi) not yet synced
	dirtyHi int64
	shrunk  bool // a truncate happened since the last sync: full resync
}

const cleanLo = int64(1) << 62

func (f *memFile) markDirty(lo, hi int64) {
	if lo < f.dirtyLo {
		f.dirtyLo = lo
	}
	if hi > f.dirtyHi {
		f.dirtyHi = hi
	}
}

// MemFS is an in-memory file system with explicit crash semantics.
//
// Durability model:
//   - A newly created file exists only volatilely until its first Sync (this
//     models creating a file and crashing before the directory entry is
//     forced).
//   - WriteAt/Truncate modify the volatile image; Sync copies the volatile
//     image over the durable one.
//   - Crash discards every volatile image and every unsynced file. Recover
//     re-opens the durable state for a new incarnation.
//
// MemFS is safe for concurrent use.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	crashed bool
	gen     uint64 // incremented by Crash: handles from prior incarnations fail forever

	// Stats counts the simulated I/O operations, used by the experiment
	// harness to report I/O costs without real disks.
	stats IOStats

	// Simulated device costs (see SetLatency): a fixed per-operation
	// latency plus a transfer time per byte. Zero means instantaneous.
	opLatency time.Duration
	nsPerByte float64
	// Simulated flush-barrier cost (see SetSyncLatency). When
	// syncLatencyOnly is non-nil, only Syncs of the named files pay it.
	syncLatency     time.Duration
	syncLatencyOnly map[string]struct{}
}

// IOStats counts simulated I/O operations performed against a MemFS.
type IOStats struct {
	Reads      uint64 // ReadAt calls
	Writes     uint64 // WriteAt calls
	Syncs      uint64 // Sync calls
	BytesRead  uint64
	BytesWrite uint64
}

// NewMemFS returns an empty in-memory file system.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile)}
}

// SetLatency configures a simulated storage device: every ReadAt/WriteAt
// sleeps opLatency plus len/bandwidth. The experiments that reproduce
// I/O-dominated claims (the paper's tables were measured against real 1992
// disks) opt in; the default is instantaneous storage. The sleep happens
// outside the file-system mutex, modelling independent parallel devices
// rather than one queue.
func (fs *MemFS) SetLatency(opLatency time.Duration, bytesPerSecond float64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.opLatency = opLatency
	if bytesPerSecond > 0 {
		fs.nsPerByte = 1e9 / bytesPerSecond
	} else {
		fs.nsPerByte = 0
	}
}

// simulate computes the delay for an n-byte transfer (called with fs.mu
// held; the caller sleeps after unlocking).
func (fs *MemFS) simulate(n int) time.Duration {
	return fs.opLatency + time.Duration(float64(n)*fs.nsPerByte)
}

// SetSyncLatency configures a simulated flush-barrier cost: every Sync
// sleeps d after applying its copy. SetLatency models only data transfer
// (ReadAt/WriteAt); the commit-throughput experiments model fsync
// separately, because amortizing that barrier across committers is group
// commit's whole point. As with SetLatency, the sleep happens outside the
// file-system mutex.
//
// When file names are given, only Syncs of those files pay the latency.
// The commit benchmarks charge wal.LogFileName alone: the commit fsync is
// the barrier group commit amortizes, whereas slowing every spill file and
// index page flush just moves the bottleneck somewhere unrelated.
func (fs *MemFS) SetSyncLatency(d time.Duration, only ...string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.syncLatency = d
	fs.syncLatencyOnly = nil
	if len(only) > 0 {
		fs.syncLatencyOnly = make(map[string]struct{}, len(only))
		for _, name := range only {
			fs.syncLatencyOnly[name] = struct{}{}
		}
	}
}

// Stats returns a snapshot of the I/O counters.
func (fs *MemFS) Stats() IOStats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// ResetStats zeroes the I/O counters.
func (fs *MemFS) ResetStats() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats = IOStats{}
}

// Crash simulates a system failure: all volatile state is lost. Files that
// were never synced disappear entirely; synced files revert to their last
// durable image. Until Recover is called, every operation fails with
// ErrCrashed, which catches code that accidentally holds on to pre-crash
// file handles.
func (fs *MemFS) Crash() { fs.crash(nil) }

// CrashTorn simulates a system failure while writes were in flight: for
// every file with unsynced bytes, persist(name, lo, hi) chooses a cut point
// in [lo, hi] and the bytes [lo, cut) reach the durable image even though
// they were never synced — a torn write. A file whose size shrank since its
// last sync keeps clean Crash semantics (the truncate stays volatile, the
// durable image is untouched). Files are visited in sorted name order, so a
// deterministic chooser produces a deterministic durable image; this is what
// makes fault-injection runs replayable from a seed.
func (fs *MemFS) CrashTorn(persist func(name string, lo, hi int64) int64) {
	fs.crash(persist)
}

func (fs *MemFS) crash(persist func(name string, lo, hi int64) int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashed = true
	fs.gen++
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fs.files[name]
		if persist != nil && !f.shrunk {
			fs.tearLocked(f, persist)
		}
		if !f.synced {
			delete(fs.files, name)
			continue
		}
		f.volatle = append([]byte(nil), f.durable...)
		f.dirtyLo, f.dirtyHi = cleanLo, 0
		f.shrunk = false
	}
}

// tearLocked persists a chooser-selected prefix of f's unsynced byte range
// to the durable image. For a file that was never synced the whole volatile
// image is in flight; persisting any of it also makes the file's existence
// durable (the directory entry reached the platter along with the data).
func (fs *MemFS) tearLocked(f *memFile, persist func(name string, lo, hi int64) int64) {
	lo, hi := f.dirtyLo, f.dirtyHi
	if !f.synced {
		lo, hi = 0, int64(len(f.volatle))
	}
	if hi > int64(len(f.volatle)) {
		hi = int64(len(f.volatle))
	}
	if lo >= hi {
		return
	}
	cut := persist(f.name, lo, hi)
	if cut < lo {
		cut = lo
	}
	if cut > hi {
		cut = hi
	}
	if cut == lo {
		return
	}
	if int64(len(f.durable)) < cut {
		f.durable = append(f.durable, make([]byte, cut-int64(len(f.durable)))...)
	}
	copy(f.durable[lo:cut], f.volatle[lo:cut])
	f.synced = true
}

// Recover ends the crashed state, making the durable images readable again.
// It models the new incarnation of the system mounting the disks.
func (fs *MemFS) Recover() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashed = false
}

// Create implements FS.
func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	f := &memFile{name: name, dirtyLo: cleanLo}
	fs.files[name] = f
	return &memHandle{fs: fs, f: f, gen: fs.gen}, nil
}

// Open implements FS.
func (fs *MemFS) Open(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("vfs: open %s: %w", name, os.ErrNotExist)
	}
	return &memHandle{fs: fs, f: f, gen: fs.gen}, nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("vfs: remove %s: %w", name, os.ErrNotExist)
	}
	delete(fs.files, name)
	return nil
}

// Exists implements FS.
func (fs *MemFS) Exists(name string) (bool, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return false, ErrCrashed
	}
	_, ok := fs.files[name]
	return ok, nil
}

// List implements FS.
func (fs *MemFS) List() ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// memHandle is an open handle onto a memFile.
type memHandle struct {
	fs     *MemFS
	f      *memFile
	gen    uint64
	closed bool
}

func (h *memHandle) check() error {
	if h.closed {
		return ErrClosed
	}
	if h.fs.crashed || h.gen != h.fs.gen {
		// Handles opened before a crash are fenced forever: the previous
		// incarnation of the system must not scribble on the recovered
		// disks (the real-world analogue is the dead machine's I/O never
		// reaching the storage array).
		return ErrCrashed
	}
	return nil
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	if err := h.check(); err != nil {
		h.fs.mu.Unlock()
		return 0, err
	}
	h.fs.stats.Reads++
	if off >= int64(len(h.f.volatle)) {
		h.fs.mu.Unlock()
		return 0, io.EOF
	}
	n := copy(p, h.f.volatle[off:])
	h.fs.stats.BytesRead += uint64(n)
	delay := h.fs.simulate(n)
	h.fs.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *memHandle) WriteAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	if err := h.check(); err != nil {
		h.fs.mu.Unlock()
		return 0, err
	}
	h.fs.stats.Writes++
	end := off + int64(len(p))
	if end > int64(len(h.f.volatle)) {
		if end <= int64(cap(h.f.volatle)) {
			h.f.volatle = h.f.volatle[:end]
		} else {
			// Grow geometrically: an append-only log forces after every
			// commit, and linear growth would recopy the file each time.
			newCap := end * 2
			if newCap < 4096 {
				newCap = 4096
			}
			grown := make([]byte, end, newCap)
			copy(grown, h.f.volatle)
			h.f.volatle = grown
		}
	}
	copy(h.f.volatle[off:end], p)
	h.f.markDirty(off, end)
	h.fs.stats.BytesWrite += uint64(len(p))
	delay := h.fs.simulate(len(p))
	h.fs.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return len(p), nil
}

func (h *memHandle) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check(); err != nil {
		return 0, err
	}
	return int64(len(h.f.volatle)), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	if err := h.check(); err != nil {
		h.fs.mu.Unlock()
		return err
	}
	h.fs.stats.Syncs++
	f := h.f
	switch {
	case f.shrunk || !f.synced:
		f.durable = append(f.durable[:0], f.volatle...)
	case f.dirtyLo < f.dirtyHi:
		if len(f.durable) < len(f.volatle) {
			f.durable = append(f.durable, make([]byte, len(f.volatle)-len(f.durable))...)
		}
		copy(f.durable[f.dirtyLo:f.dirtyHi], f.volatle[f.dirtyLo:f.dirtyHi])
	}
	f.shrunk = false
	f.dirtyLo, f.dirtyHi = cleanLo, 0
	f.synced = true
	delay := h.fs.syncLatency
	if h.fs.syncLatencyOnly != nil {
		if _, ok := h.fs.syncLatencyOnly[f.name]; !ok {
			delay = 0
		}
	}
	h.fs.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check(); err != nil {
		return err
	}
	switch {
	case size < int64(len(h.f.volatle)):
		h.f.volatle = h.f.volatle[:size]
		h.f.shrunk = true
	case size > int64(len(h.f.volatle)):
		old := int64(len(h.f.volatle))
		grown := make([]byte, size)
		copy(grown, h.f.volatle)
		h.f.volatle = grown
		h.f.markDirty(old, size)
	}
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}

func (h *memHandle) Name() string { return h.f.name }

// ---------------------------------------------------------------------------
// OSFS
// ---------------------------------------------------------------------------

// OSFS stores files in a directory of the host file system. It is used by
// the runnable examples so their databases are inspectable on disk; the
// crash experiments use MemFS because real power-loss cannot be simulated
// faithfully through the OS page cache.
type OSFS struct {
	dir string
}

// NewOSFS returns a file system rooted at dir, creating it if necessary.
func NewOSFS(dir string) (*OSFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &OSFS{dir: dir}, nil
}

func (fs *OSFS) path(name string) string { return filepath.Join(fs.dir, name) }

// Create implements FS.
func (fs *OSFS) Create(name string) (File, error) {
	f, err := os.OpenFile(fs.path(name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &osFile{f: f, name: name}, nil
}

// Open implements FS.
func (fs *OSFS) Open(name string) (File, error) {
	f, err := os.OpenFile(fs.path(name), os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &osFile{f: f, name: name}, nil
}

// Remove implements FS.
func (fs *OSFS) Remove(name string) error { return os.Remove(fs.path(name)) }

// Exists implements FS.
func (fs *OSFS) Exists(name string) (bool, error) {
	_, err := os.Stat(fs.path(name))
	if err == nil {
		return true, nil
	}
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	return false, err
}

// List implements FS.
func (fs *OSFS) List() ([]string, error) {
	ents, err := os.ReadDir(fs.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

type osFile struct {
	f    *os.File
	name string
}

func (o *osFile) ReadAt(p []byte, off int64) (int, error)  { return o.f.ReadAt(p, off) }
func (o *osFile) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }
func (o *osFile) Close() error                             { return o.f.Close() }
func (o *osFile) Sync() error                              { return o.f.Sync() }
func (o *osFile) Truncate(size int64) error                { return o.f.Truncate(size) }
func (o *osFile) Name() string                             { return o.name }

func (o *osFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
