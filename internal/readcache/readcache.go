// Package readcache is a hash-table fast path for index point lookups,
// layered over the B+-tree (the Griffin idea: the tree stays the source of
// truth; the hash table is a coherent cache of recently-looked-up key runs).
//
// Coherence is version-based, not content-based. Every key maps to a slot
// holding a version counter and, when filled, the full entry run (all RIDs,
// including pseudo-deleted entries with their flags) for that key. Writers
// call Invalidate while still holding their X key locks — before the
// transaction releases them — which bumps the version and clears the run.
// Readers use the Begin/Put pair to fill (a fill racing an invalidation
// loses: Put only lands if the version still matches), and Validate after
// acquiring locks to prove freshness: if the version a reader sampled at Get
// is still current after it holds S locks on every returned RID, no writer
// can have changed the key's committed entry run in between, so the cached
// run equals what a tree descent would return now.
//
// Versions are never reused: every version a slot ever carries is drawn from
// a per-shard monotonic counter, both at slot creation and on Invalidate.
// This closes the evict/recreate ABA: if a slot is evicted (its version
// forgotten, making Invalidate on the key a no-op) and later recreated by
// Begin, the new slot's version is strictly greater than any version a
// reader could have sampled from the old incarnation, so a stale Validate
// or delayed Put from before the eviction correctly fails.
//
// The cache is memory-only and bounded: each shard evicts an arbitrary slot
// beyond its capacity share. Eviction only loses the cached run, never
// correctness (a miss falls back to the tree).
package readcache

import (
	"sync"

	"onlineindex/internal/metrics"
	"onlineindex/internal/types"
)

const shardCount = 16 // fixed power of two; key runs hash across shards

// Entry is one cached index entry: an RID and its pseudo-delete flag at fill
// time. Pseudo entries are cached too — the engine's lock protocol decides
// their visibility per read, and caching them keeps Validate exact (a
// live→pseudo transition bumps the version like any other write).
type Entry struct {
	RID    types.RID
	Pseudo bool
}

// Metrics are the cache's nil-safe counters.
type Metrics struct {
	Hits          *metrics.Counter // Get returned a filled run
	Misses        *metrics.Counter // Get found no filled slot
	Fills         *metrics.Counter // Put landed
	Invalidations *metrics.Counter // Invalidate bumped a slot
	Evictions     *metrics.Counter // slot dropped for capacity
}

// MetricsFrom registers the cache counters under prefix (e.g. "readcache").
func MetricsFrom(r *metrics.Registry, prefix string) Metrics {
	return Metrics{
		Hits:          r.Counter(prefix + ".hits"),
		Misses:        r.Counter(prefix + ".misses"),
		Fills:         r.Counter(prefix + ".fills"),
		Invalidations: r.Counter(prefix + ".invalidations"),
		Evictions:     r.Counter(prefix + ".evictions"),
	}
}

type slot struct {
	ver     uint64
	filled  bool
	entries []Entry
}

type shard struct {
	mu sync.Mutex
	// ver is the shard's monotonic version source: every slot version ever
	// handed out in this shard came from a bump of this counter, so no slot
	// — including one recreated after an eviction — can repeat a version.
	ver   uint64
	slots map[string]*slot
}

// Cache is one index's hash fast path.
type Cache struct {
	shards [shardCount]shard
	perCap int // max slots per shard
	met    Metrics
}

// New creates a cache holding at most cap key runs (0 means a default of
// 4096). Metrics are optional; the zero Metrics is a no-op.
func New(capacity int, met Metrics) *Cache {
	if capacity <= 0 {
		capacity = 4096
	}
	per := capacity / shardCount
	if per < 1 {
		per = 1
	}
	c := &Cache{perCap: per, met: met}
	for i := range c.shards {
		c.shards[i].slots = make(map[string]*slot)
	}
	return c
}

// fnv1a matches the spirit of the buffer pool's fixed hash: deterministic,
// allocation-free, good enough to spread keys across 16 shards.
func fnv1a(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func (c *Cache) shardOf(key []byte) *shard {
	return &c.shards[fnv1a(key)&(shardCount-1)]
}

// Get returns the cached entry run for key and the version it was read at.
// ok=false means no filled slot exists (the caller goes to the tree; pair
// with Begin/Put to fill). The returned slice is shared — callers must not
// mutate it.
func (c *Cache) Get(key []byte) ([]Entry, uint64, bool) {
	s := c.shardOf(key)
	s.mu.Lock()
	sl := s.slots[string(key)]
	if sl == nil || !sl.filled {
		s.mu.Unlock()
		c.met.Misses.Inc()
		return nil, 0, false
	}
	entries, ver := sl.entries, sl.ver
	s.mu.Unlock()
	c.met.Hits.Inc()
	return entries, ver, true
}

// Begin reserves a fill for key and returns the version the upcoming tree
// read will be tagged with. The caller reads the tree, then calls Put with
// this version; any Invalidate in between bumps the version and the Put
// becomes a no-op. Begin on an existing slot reuses it (and its version).
func (c *Cache) Begin(key []byte) uint64 {
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	sl := s.slots[string(key)]
	if sl == nil {
		if len(s.slots) >= c.perCap {
			c.evictLocked(s)
		}
		s.ver++
		sl = &slot{ver: s.ver}
		s.slots[string(key)] = sl
	}
	return sl.ver
}

// Put installs the entry run read from the tree iff the slot still exists at
// the version Begin returned. entries is retained — pass an owned slice.
func (c *Cache) Put(key []byte, ver uint64, entries []Entry) {
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	sl := s.slots[string(key)]
	if sl == nil || sl.ver != ver {
		return // invalidated or evicted while the tree was being read
	}
	sl.entries = entries
	sl.filled = true
	c.met.Fills.Inc()
}

// Validate reports whether key's slot is still at ver. True after the caller
// acquired locks on every cached RID proves the run is the committed state.
func (c *Cache) Validate(key []byte, ver uint64) bool {
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	sl := s.slots[string(key)]
	return sl != nil && sl.ver == ver
}

// Invalidate bumps the key's version and drops its cached run. Writers call
// it for every key they touch while still holding their X locks on the
// affected entries, which is what makes Validate-after-lock sound. An absent
// key is a no-op: with no slot, Validate already fails, and any future slot
// is seeded from the shard counter with a version strictly greater than
// every version previously observed for the key.
func (c *Cache) Invalidate(key []byte) {
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	sl := s.slots[string(key)]
	if sl == nil {
		return
	}
	s.ver++
	sl.ver = s.ver
	sl.filled = false
	sl.entries = nil
	c.met.Invalidations.Inc()
}

// evictLocked drops one slot to stay under the shard cap. Go's random map
// iteration picks the victim; losing a cached run only costs a future miss.
func (c *Cache) evictLocked(s *shard) {
	for k := range s.slots {
		delete(s.slots, k)
		c.met.Evictions.Inc()
		return
	}
}

// Len reports the total number of slots (filled or reserved), for tests.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].slots)
		c.shards[i].mu.Unlock()
	}
	return n
}
