package readcache

import (
	"fmt"
	"sync"
	"testing"

	"onlineindex/internal/metrics"
	"onlineindex/internal/types"
)

func ridN(i int) types.RID {
	return types.RID{PageID: types.PageID{File: 1, Page: types.PageNum(i)}, Slot: 0}
}

func TestFillGetValidate(t *testing.T) {
	c := New(64, Metrics{})
	key := []byte("k1")
	if _, _, ok := c.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	ver := c.Begin(key)
	c.Put(key, ver, []Entry{{RID: ridN(1)}, {RID: ridN(2), Pseudo: true}})
	got, gv, ok := c.Get(key)
	if !ok || len(got) != 2 || gv != ver {
		t.Fatalf("Get after Put: ok=%v len=%d ver=%d want 2 entries at ver %d", ok, len(got), gv, ver)
	}
	if !got[1].Pseudo {
		t.Fatal("pseudo flag lost in cache")
	}
	if !c.Validate(key, gv) {
		t.Fatal("Validate failed with no intervening writer")
	}
}

func TestInvalidateDefeatsStaleFill(t *testing.T) {
	c := New(64, Metrics{})
	key := []byte("k1")
	ver := c.Begin(key)
	// Writer invalidates while the reader is off reading the tree.
	c.Invalidate(key)
	c.Put(key, ver, []Entry{{RID: ridN(1)}})
	if _, _, ok := c.Get(key); ok {
		t.Fatal("stale Put landed after Invalidate")
	}
	// And a run filled before the invalidation must fail Validate after it.
	ver2 := c.Begin(key)
	c.Put(key, ver2, []Entry{{RID: ridN(2)}})
	_, gv, ok := c.Get(key)
	if !ok {
		t.Fatal("fresh fill missing")
	}
	c.Invalidate(key)
	if c.Validate(key, gv) {
		t.Fatal("Validate passed across an invalidation")
	}
}

// TestEvictRecreateNoVersionABA replays the evict/recreate ABA: a reader
// samples a version, the slot is evicted (so a writer's Invalidate on the
// now-absent key is a no-op), and a later Begin recreates the slot. The
// recreated slot must never carry a version the old incarnation handed out —
// otherwise the reader's stale Validate would pass (serving a pre-write run)
// and a delayed pre-eviction Put would install stale entries.
func TestEvictRecreateNoVersionABA(t *testing.T) {
	c := New(shardCount, Metrics{}) // 1 slot per shard: same-shard keys collide
	// Two keys in the same shard so filling one evicts the other.
	var victim, evictor []byte
	victim = []byte("victim")
	vs := c.shardOf(victim)
	for i := 0; ; i++ {
		k := []byte(fmt.Sprintf("evictor-%d", i))
		if c.shardOf(k) == vs {
			evictor = k
			break
		}
	}

	// Reader samples the victim's version (as Get would) and goes to the tree.
	ver := c.Begin(victim)
	c.Put(victim, ver, []Entry{{RID: ridN(1)}})
	if !c.Validate(victim, ver) {
		t.Fatal("sanity: fresh fill should validate")
	}

	// Capacity pressure evicts the victim; the writer's Invalidate finds no
	// slot; a new lookup recreates the victim's slot.
	c.Begin(evictor)
	if c.Validate(victim, ver) {
		t.Fatal("Validate passed against an evicted slot")
	}
	c.Invalidate(victim) // absent: no-op, and must stay safe anyway
	ver2 := c.Begin(victim)

	if ver2 == ver {
		t.Fatalf("recreated slot reused version %d", ver)
	}
	if c.Validate(victim, ver) {
		t.Fatal("stale Validate passed against the recreated slot")
	}
	// The delayed pre-eviction Put must not land in the recreated slot.
	c.Put(victim, ver, []Entry{{RID: ridN(99)}})
	if _, _, ok := c.Get(victim); ok {
		t.Fatal("delayed stale Put landed in the recreated slot")
	}
}

// TestInvalidateNeverReusesVersions drives one key through many
// invalidate/evict/recreate cycles and asserts every version observed is
// strictly increasing — the property the Validate-after-lock protocol needs.
func TestInvalidateNeverReusesVersions(t *testing.T) {
	c := New(shardCount, Metrics{})
	key := []byte("k")
	ks := c.shardOf(key)
	var other []byte
	for i := 0; ; i++ {
		k := []byte(fmt.Sprintf("o-%d", i))
		if c.shardOf(k) == ks {
			other = k
			break
		}
	}
	last := uint64(0)
	for i := 0; i < 50; i++ {
		v := c.Begin(key)
		if v <= last {
			t.Fatalf("cycle %d: version %d not above prior %d", i, v, last)
		}
		c.Put(key, v, []Entry{{RID: ridN(i)}})
		c.Invalidate(key)
		if c.Validate(key, v) {
			t.Fatalf("cycle %d: Validate passed across Invalidate", i)
		}
		last = v
		if i%2 == 0 {
			c.Begin(other) // evict key's slot so the next Begin recreates it
		}
	}
}

func TestEvictionBoundsSize(t *testing.T) {
	reg := metrics.New()
	met := MetricsFrom(reg, "readcache")
	c := New(32, met) // 2 slots per shard
	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		v := c.Begin(key)
		c.Put(key, v, []Entry{{RID: ridN(i)}})
	}
	if n := c.Len(); n > 32 {
		t.Fatalf("cache grew to %d slots, cap 32", n)
	}
	if met.Evictions.Value() == 0 {
		t.Fatal("no evictions counted despite overflow")
	}
	if met.Fills.Value() == 0 {
		t.Fatal("no fills counted")
	}
}

// TestConcurrentFillInvalidate races fillers against invalidators (-race);
// the invariant is that a Get never returns a run whose version fails an
// immediate Validate unless an invalidation happened in between — i.e. the
// version number pins the run.
func TestConcurrentFillInvalidate(t *testing.T) {
	c := New(256, Metrics{})
	keys := make([][]byte, 8)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("k%d", i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := keys[(w+i)%len(keys)]
				v := c.Begin(k)
				c.Put(k, v, []Entry{{RID: ridN(i)}})
				if got, gv, ok := c.Get(k); ok {
					_ = got
					c.Validate(k, gv)
				}
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.Invalidate(keys[(w*3+i)%len(keys)])
			}
		}(w)
	}
	wg.Wait()
}
