package onlineindex_test

import (
	"os"
	"runtime"
	"testing"
	"time"

	"onlineindex/internal/experiments"
)

// TestPartitionedSortGate enforces the partitioned-sort win: run generation
// over 4 concurrent partitions must be at least 1.5x faster than the serial
// single-tree sorter on the same item stream. The window covers only the
// parallelised half (page feed + replacement selection + run spill) — the
// merge is serial in both configurations and would only dilute the ratio.
// Wall-clock measurements are noisy on shared machines, so the gate only
// runs when explicitly requested (ONLINEINDEX_SORT_GATE=1, set by
// `scripts/ci.sh bench-sort`) and takes the best of several trials per
// configuration, interleaved so both see the same machine drift.
func TestPartitionedSortGate(t *testing.T) {
	if os.Getenv("ONLINEINDEX_SORT_GATE") == "" {
		t.Skip("set ONLINEINDEX_SORT_GATE=1 to run the partitioned-sort gate")
	}
	// The gate measures parallel speedup, which needs parallel hardware: on
	// fewer cores than partitions the concurrent feed can only add scheduling
	// overhead (1 core measures ~0.9x). CI's nightly runners have >= 4.
	if runtime.NumCPU() < 4 {
		t.Skipf("partitioned-sort gate needs >= 4 CPUs, have %d", runtime.NumCPU())
	}
	const (
		items    = 400_000
		capacity = 8192
		trials   = 3
	)
	one := func(parts int, concurrent bool) time.Duration {
		d, err := experiments.MeasureRunGeneration(items, capacity, parts, concurrent)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	var serial, par time.Duration
	for i := 0; i < trials; i++ {
		if d := one(1, false); serial == 0 || d < serial {
			serial = d
		}
		if d := one(4, true); par == 0 || d < par {
			par = d
		}
	}
	speedup := float64(serial) / float64(par)
	t.Logf("run generation over %d items: serial %v, 4 partitions %v, speedup %.2fx",
		items, serial, par, speedup)
	if speedup < 1.5 {
		t.Errorf("partitioned sort speedup %.2fx below the 1.5x gate", speedup)
	}
}
