// Command benchtab regenerates the reproduction's experiment tables
// (DESIGN.md's experiment index; results recorded in EXPERIMENTS.md).
//
// Usage:
//
//	benchtab                      # run every experiment at full scale
//	benchtab -run E4,E5           # run a subset
//	benchtab -scale 0.2           # shrink table sizes for a quick pass
//	benchtab -workers 4           # scan-pipeline workers for build experiments
//	benchtab -buildbench 200000   # worker-scaling build benchmark; writes
//	                              # BENCH_build.json (workers 1 and -workers N)
//	benchtab -commitbench         # multi-writer commit-throughput benchmark
//	                              # (group commit vs serial Force); merges a
//	                              # commit_tps record into BENCH_build.json
//	benchtab -sortbench 200000    # partitioned sort + merge→load overlap
//	                              # benchmark; merges sortbench records into
//	                              # BENCH_build.json
//	benchtab -concbench           # buffer/lock/WAL contention matrix
//	                              # (shards×stripes at 8 goroutines); merges a
//	                              # concbench record into BENCH_build.json
//	benchtab -readbench 20000     # read-path throughput matrix (point/range/
//	                              # seqscan, quiescent and during a live SF
//	                              # build) on a table of this many rows;
//	                              # merges a readbench record into
//	                              # BENCH_build.json
//	benchtab -partbench 20000     # horizontal-partitioning matrix: fan-out SF
//	                              # build time and routed read mix at P in
//	                              # {1,2,4} shards (-partitions adds one more
//	                              # count, -partition-scheme picks range|hash);
//	                              # merges a partbench record into
//	                              # BENCH_build.json
//	benchtab -diskbench 10000000  # on-disk (OSFS) build matrix at this many
//	                              # rows (-scale sizes it down, -dir picks the
//	                              # scratch directory, -variant tags the
//	                              # records baseline|optimized); merges
//	                              # diskbench records into BENCH_build.json.
//	                              # -cpuprofile/-memprofile capture pprof
//	                              # profiles of the build matrix, summarized
//	                              # by scripts/analyze_profile.sh
//
// The benchmark modes all merge into -out rather than clobbering each
// other's records: build records carry no "kind" field, the commit record
// carries "kind": "commit_tps", sort records carry "kind": "sortbench", the
// contention record carries "kind": "concbench", the read record carries
// "kind": "readbench", and each mode replaces only its own.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"onlineindex/internal/experiments"
)

// mergeRecords rewrites the JSON array at path, dropping existing entries
// whose "kind" field equals kind (build records have none, so kind "" drops
// them) and appending recs. A missing file starts from an empty array, so
// either benchmark mode can run first.
func mergeRecords(path, kind string, recs []any) error {
	var kept []any
	if data, err := os.ReadFile(path); err == nil {
		var existing []map[string]any
		if err := json.Unmarshal(data, &existing); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for _, r := range existing {
			k, _ := r["kind"].(string)
			if k != kind {
				kept = append(kept, r)
			}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	kept = append(kept, recs...)
	data, err := json.MarshalIndent(kept, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// mergeDiskRecords is mergeRecords for the diskbench mode, which keeps one
// record set per variant: a "-variant optimized" run must not erase the
// "-variant baseline" rows it is being compared against, so only records
// matching both kind and variant are replaced.
func mergeDiskRecords(path, variant string, recs []any) error {
	var kept []any
	if data, err := os.ReadFile(path); err == nil {
		var existing []map[string]any
		if err := json.Unmarshal(data, &existing); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for _, r := range existing {
			k, _ := r["kind"].(string)
			v, _ := r["variant"].(string)
			if k != "diskbench" || v != variant {
				kept = append(kept, r)
			}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	kept = append(kept, recs...)
	data, err := json.MarshalIndent(kept, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// startProfiles begins CPU profiling to cpuPath (if non-empty) and returns a
// stop function that finishes the CPU profile and writes a heap profile to
// memPath (if non-empty). Either path may be empty independently.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: heap profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: heap profile: %v\n", err)
			}
		}
	}, nil
}

func main() {
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	scale := flag.Float64("scale", 1.0, "table-size scale factor")
	workers := flag.Int("workers", 1, "scan-pipeline key-extraction workers (core.Options.ScanWorkers)")
	buildBench := flag.Int("buildbench", 0, "run the build benchmark on a table of this many rows and merge into -out (skips experiments)")
	commitBench := flag.Bool("commitbench", false, "run the commit-throughput benchmark and merge a commit_tps record into -out (skips experiments)")
	sortBench := flag.Int("sortbench", 0, "run the partitioned-sort benchmark on a table of this many rows and merge sortbench records into -out (skips experiments)")
	concBench := flag.Bool("concbench", false, "run the buffer/lock/WAL contention benchmark and merge a concbench record into -out (skips experiments)")
	readBench := flag.Int("readbench", 0, "run the read-path benchmark on a table of this many rows and merge a readbench record into -out (skips experiments)")
	partBench := flag.Int("partbench", 0, "run the horizontal-partitioning benchmark (P in {1,2,4}) on a table of this many rows and merge a partbench record into -out (skips experiments)")
	partitions := flag.Int("partitions", 0, "extra partition count to add to the -partbench sweep")
	partScheme := flag.String("partition-scheme", "hash", "partitioning scheme for -partbench: range or hash")
	diskBench := flag.Int("diskbench", 0, "run the on-disk (OSFS) build matrix on a table of this many rows (scaled by -scale) and merge diskbench records into -out (skips experiments)")
	dir := flag.String("dir", "", "scratch directory for -diskbench (default: a fresh os.MkdirTemp dir, removed afterwards)")
	variant := flag.String("variant", "optimized", "variant tag for -diskbench records (baseline|optimized); each variant's records replace only their own")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the -diskbench build matrix to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the -diskbench build matrix to this file")
	out := flag.String("out", "BENCH_build.json", "output path for the -buildbench/-commitbench JSON records")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, Workers: *workers, Out: os.Stdout}

	if *buildBench > 0 {
		// Compare serial against the requested worker count (one record per
		// method and worker count) and emit machine-readable results.
		counts := []int{1}
		if *workers > 1 {
			counts = append(counts, *workers)
		}
		recs, err := experiments.BuildBench(cfg, *buildBench, counts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: buildbench failed: %v\n", err)
			os.Exit(1)
		}
		anys := make([]any, len(recs))
		for i := range recs {
			anys[i] = recs[i]
		}
		// Build records are the ones without a "kind" discriminator.
		if err := mergeRecords(*out, "", anys); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("merged %d build records into %s\n", len(recs), *out)
		return
	}

	if *diskBench > 0 {
		scratch := *dir
		if scratch == "" {
			tmp, err := os.MkdirTemp("", "onlineindex-diskbench-*")
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
				os.Exit(1)
			}
			defer os.RemoveAll(tmp)
			scratch = tmp
		}
		stop, err := startProfiles(*cpuProfile, *memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: profile: %v\n", err)
			os.Exit(1)
		}
		recs, err := experiments.DiskBench(cfg, *diskBench, scratch, *variant)
		stop()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: diskbench failed: %v\n", err)
			os.Exit(1)
		}
		anys := make([]any, len(recs))
		for i := range recs {
			anys[i] = recs[i]
		}
		if err := mergeDiskRecords(*out, *variant, anys); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("merged %d diskbench (%s) records into %s\n", len(recs), *variant, *out)
		return
	}

	if *sortBench > 0 {
		recs, err := experiments.SortBench(cfg, *sortBench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: sortbench failed: %v\n", err)
			os.Exit(1)
		}
		anys := make([]any, len(recs))
		for i := range recs {
			anys[i] = recs[i]
		}
		if err := mergeRecords(*out, "sortbench", anys); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("merged %d sortbench records into %s\n", len(recs), *out)
		return
	}

	if *readBench > 0 {
		rec, err := experiments.ReadBench(cfg, *readBench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: readbench failed: %v\n", err)
			os.Exit(1)
		}
		if err := mergeRecords(*out, rec.Kind, []any{rec}); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("merged readbench record into %s\n", *out)
		return
	}

	if *partBench > 0 {
		rec, err := experiments.PartBench(cfg, *partScheme, *partBench, *partitions)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: partbench failed: %v\n", err)
			os.Exit(1)
		}
		if err := mergeRecords(*out, rec.Kind, []any{rec}); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("merged partbench record into %s\n", *out)
		return
	}

	if *concBench {
		rec, err := experiments.ConcBench(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: concbench failed: %v\n", err)
			os.Exit(1)
		}
		if err := mergeRecords(*out, rec.Kind, []any{rec}); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("merged concbench record into %s\n", *out)
		return
	}

	if *commitBench {
		rec, err := experiments.CommitBench(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: commitbench failed: %v\n", err)
			os.Exit(1)
		}
		if err := mergeRecords(*out, rec.Kind, []any{rec}); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("merged commit_tps record into %s\n", *out)
		return
	}

	var selected []experiments.Experiment
	if *run == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.Get(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
