// Command benchtab regenerates the reproduction's experiment tables
// (DESIGN.md's experiment index; results recorded in EXPERIMENTS.md).
//
// Usage:
//
//	benchtab                # run every experiment at full scale
//	benchtab -run E4,E5     # run a subset
//	benchtab -scale 0.2     # shrink table sizes for a quick pass
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"onlineindex/internal/experiments"
)

func main() {
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	scale := flag.Float64("scale", 1.0, "table-size scale factor")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if *run == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.Get(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	cfg := experiments.Config{Scale: *scale, Out: os.Stdout}
	for _, e := range selected {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s took %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
