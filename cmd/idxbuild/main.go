// Command idxbuild is a small demonstration CLI: it loads a synthetic table,
// runs an update workload against it, builds an index with the chosen
// algorithm while the workload runs, and prints the build and workload
// statistics plus a consistency verdict.
//
// Usage:
//
//	idxbuild -rows 50000 -method sf -updaters 4
//	idxbuild -method nsf -unique
//	idxbuild -method offline -crash   # offline cannot crash-resume; see -method sf -crash
//	idxbuild -partitions 4 -partition-scheme hash -method sf -updaters 4
//	                                  # fan the build out over 4 hash shards
//	                                  # behind one logical index
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"onlineindex"
	"onlineindex/internal/harness"
	"onlineindex/internal/workload"
)

func main() {
	rows := flag.Int("rows", 50_000, "table rows to populate")
	method := flag.String("method", "sf", "build method: offline | nsf | sf")
	updaters := flag.Int("updaters", 4, "concurrent update workers during the build")
	unique := flag.Bool("unique", false, "build a unique index (on the id column)")
	crash := flag.Bool("crash", false, "crash mid-build, then recover and resume")
	sortSF := flag.Bool("sortsf", false, "apply the side-file sorted (SF only)")
	workers := flag.Int("workers", 0, "parallel key-extraction workers for the scan pipeline (0 = serial)")
	sortParts := flag.Int("sort-partitions", 0, "parallel sort partitions behind the scan (0/1 = serial sorter)")
	overlap := flag.Bool("merge-overlap", false, "overlap the run merge with index loading (§2.2.2)")
	adminAddr := flag.String("admin", "", "serve the live admin endpoint on this address (e.g. 127.0.0.1:7070; port 0 picks one)")
	linger := flag.Duration("linger", 0, "keep the admin endpoint serving this long after the build finishes")
	bufShards := flag.Int("buffer-shards", 0, "buffer pool page-table shards, rounded up to a power of two (0 = min(16, GOMAXPROCS))")
	lockStripes := flag.Int("lock-stripes", 0, "lock manager bucket-map stripes, rounded up to a power of two (0 = min(16, GOMAXPROCS))")
	partitions := flag.Int("partitions", 0, "hash/range-partition the table into this many shards and fan the build out over them (0 = unpartitioned)")
	partScheme := flag.String("partition-scheme", "hash", "partitioning scheme for -partitions: range or hash (on the id column)")
	flag.Parse()

	var m onlineindex.BuildMethod
	switch strings.ToLower(*method) {
	case "offline":
		m = onlineindex.Offline
	case "nsf":
		m = onlineindex.NSF
	case "sf":
		m = onlineindex.SF
	default:
		fmt.Fprintf(os.Stderr, "unknown method %q\n", *method)
		os.Exit(2)
	}

	fs := onlineindex.NewMemFS()
	cfg := onlineindex.Config{FS: fs, PoolSize: 4096, BufferShards: *bufShards, LockStripes: *lockStripes}
	db, err := onlineindex.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	eng := db.Engine()
	if *adminAddr != "" {
		adm, err := db.ServeAdmin(*adminAddr)
		if err != nil {
			log.Fatal(err)
		}
		currentAdmin = adm
		fmt.Printf("admin endpoint at %s\n", adm.URL())
	}
	if *partitions > 0 {
		pspec := onlineindex.PartitionSpec{Partitions: *partitions, KeyColumn: "id"}
		switch strings.ToLower(*partScheme) {
		case "hash":
			pspec.Scheme = onlineindex.HashPartition
		case "range":
			pspec.Scheme = onlineindex.RangePartition
			for i := 1; i < *partitions; i++ {
				pspec.Bounds = append(pspec.Bounds, onlineindex.Int64(int64(*rows*i / *partitions)))
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown partition scheme %q\n", *partScheme)
			os.Exit(2)
		}
		if _, err := db.CreatePartitionedTable("orders", workload.Schema(), pspec); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("partitioned orders into %d %s shards\n", *partitions, strings.ToLower(*partScheme))
	} else if _, err := eng.CreateTable("orders", workload.Schema()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("populating %d rows...\n", *rows)
	rids, err := workload.Populate(db, "orders", *rows, 24)
	if err != nil {
		log.Fatal(err)
	}

	cols := []string{"key"}
	if *unique {
		cols = []string{"id"}
	}
	spec := onlineindex.IndexSpec{
		Name: "orders_idx", Table: "orders", Columns: cols, Unique: *unique, Method: m,
	}
	opts := onlineindex.BuildOptions{
		CheckpointPages: 64, CheckpointKeys: 10_000, SortSideFile: *sortSF,
		ScanWorkers: *workers, SortPartitions: *sortParts, MergeOverlap: *overlap,
	}

	var runner *workload.Runner
	if *updaters > 0 && m != onlineindex.Offline && !*crash {
		// The crash demo runs without the workload: the workers would keep
		// talking to the fenced pre-crash incarnation.
		runner = workload.NewRunner(db, "orders", rids, *updaters, workload.DefaultMix)
		runner.Start()
		fmt.Printf("started %d update workers\n", *updaters)
	}

	currentDB = db
	start := time.Now()
	var res *onlineindex.BuildResult
	if *crash {
		res, err = buildWithCrash(cfg, db, spec, opts, *partitions > 0)
	} else {
		res, err = db.BuildIndex(spec, opts)
	}
	buildDur := time.Since(start)
	var wst workload.Stats
	if runner != nil {
		wst = runner.Stop()
	}
	if err != nil {
		log.Fatalf("build: %v", err)
	}

	db = currentDB
	if db == nil {
		log.Fatal("internal: lost database handle")
	}
	if err := db.CheckIndexConsistency("orders_idx"); err != nil {
		log.Fatalf("CONSISTENCY FAILURE: %v", err)
	}
	var cl float64
	if *partitions == 0 {
		cl, _ = harness.IndexClustering(db.Engine(), "orders_idx")
	}

	st := res.Stats
	fmt.Printf("\nbuild method      %s\n", st.Method)
	fmt.Printf("total time        %.1fms\n", buildDur.Seconds()*1000)
	fmt.Printf("  scan+sort       %.1fms  (%d pages, %d keys, %d runs)\n",
		st.ScanSort.Seconds()*1000, st.PagesScanned, st.KeysExtracted, st.Runs)
	fmt.Printf("  insert/load     %.1fms  (%d inserted, %d duplicate-skipped)\n",
		st.Insert.Seconds()*1000, st.KeysInserted, st.KeysSkipped)
	if st.Method == onlineindex.SF {
		fmt.Printf("  side-file       %.1fms  (%d entries, %d applied)\n",
			st.SideFile.Seconds()*1000, st.SideFileLen, st.SideFileApplied)
	}
	fmt.Printf("quiesce wait      %.1fms\n", st.QuiesceWait.Seconds()*1000)
	fmt.Printf("checkpoints       %d\n", st.Checkpoints)
	if *partitions == 0 {
		fmt.Printf("clustering        %.3f\n", cl)
	}
	if runner != nil {
		fmt.Printf("workload          %d commits (%.0f/s), worst stall %.1fms\n",
			wst.Commits, wst.Throughput(), wst.MaxStall.Seconds()*1000)
	}
	fmt.Println("index verified consistent with table")
	if currentAdmin != nil {
		if *linger > 0 {
			fmt.Printf("admin endpoint serving the final snapshot for %s\n", *linger)
			time.Sleep(*linger)
		}
		currentAdmin.Close() //nolint:errcheck
	}
}

// currentDB lets buildWithCrash hand back the post-recovery handle.
var currentDB *onlineindex.DB

// currentAdmin is the live admin endpoint; buildWithCrash rebinds it to the
// recovered engine so pollers keep seeing the resumed build.
var currentAdmin *onlineindex.AdminServer

// rebindAdmin moves the admin endpoint onto the recovered database.
func rebindAdmin(db *onlineindex.DB) {
	if currentAdmin == nil {
		return
	}
	addr := currentAdmin.Addr()
	currentAdmin.Close() //nolint:errcheck
	currentAdmin = nil
	if adm, err := db.ServeAdmin(addr); err == nil {
		currentAdmin = adm
	}
}

func buildWithCrash(cfg onlineindex.Config, db *onlineindex.DB, spec onlineindex.IndexSpec, opts onlineindex.BuildOptions, partitioned bool) (*onlineindex.BuildResult, error) {
	currentDB = db
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover() }()
		db.BuildIndex(spec, opts) //nolint:errcheck // interrupted by the crash
	}()
	time.Sleep(80 * time.Millisecond)
	db.Crash()
	<-done
	fmt.Println("CRASH injected; recovering...")
	if partitioned {
		// Partitioned recovery is coordinator-driven: Recover resumes the
		// checkpointed shard builds, rebuilds shards whose descriptors never
		// became durable, and re-runs the completion protocol.
		db2, err := onlineindex.Recover(cfg)
		if err != nil {
			return nil, err
		}
		currentDB = db2
		rebindAdmin(db2)
		fmt.Println("coordinator finished the fan-out build during recovery")
		return &onlineindex.BuildResult{
			Index: onlineindex.IndexInfo{
				Name: spec.Name, Unique: spec.Unique, Method: spec.Method,
			},
			Stats: onlineindex.BuildStats{Method: spec.Method},
		}, nil
	}
	db2, err := onlineindex.RecoverWithoutResume(cfg)
	if err != nil {
		return nil, err
	}
	currentDB = db2
	rebindAdmin(db2)
	pending, err := db2.PendingBuilds()
	if err != nil {
		return nil, err
	}
	if len(pending) == 0 {
		fmt.Println("crash preceded the descriptor; rebuilding from scratch")
		return db2.BuildIndex(spec, opts)
	}
	pb := pending[0]
	if pb.State != nil {
		fmt.Printf("resuming from checkpointed phase %q\n", pb.State.Phase)
	}
	return db2.ResumeBuild(pb, opts)
}
