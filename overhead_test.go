package onlineindex_test

import (
	"os"
	"testing"
	"time"

	"onlineindex/internal/catalog"
	"onlineindex/internal/core"
	"onlineindex/internal/engine"
	"onlineindex/internal/vfs"
	"onlineindex/internal/workload"
)

// overheadDB is benchDB with the metrics registry (and progress tracking)
// optionally disabled — the baseline the instrumentation cost is measured
// against.
func overheadDB(tb testing.TB, rows int, disableMetrics bool) *engine.DB {
	tb.Helper()
	db, err := engine.Open(engine.Config{FS: vfs.NewMemFS(), PoolSize: 4096, DisableMetrics: disableMetrics})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := db.CreateTable("orders", workload.Schema()); err != nil {
		tb.Fatal(err)
	}
	if _, err := workload.Populate(db, "orders", rows, 24); err != nil {
		tb.Fatal(err)
	}
	return db
}

// BenchmarkMetricsOverhead compares the E1 quiet-table build with the full
// observability subsystem (metrics registry + progress tracker) against the
// DisableMetrics baseline, per method. The instrumented/disabled keys/s gap
// is the subsystem's cost; the budget is < 2%.
func BenchmarkMetricsOverhead(b *testing.B) {
	for _, method := range []catalog.BuildMethod{catalog.MethodNSF, catalog.MethodSF} {
		for _, variant := range []struct {
			name     string
			disabled bool
		}{{"instrumented", false}, {"disabled", true}} {
			b.Run(method.String()+"/"+variant.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					db := overheadDB(b, benchRows, variant.disabled)
					b.StartTimer()
					if _, err := core.Build(db, buildSpec(method), core.Options{}); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(benchRows*b.N)/b.Elapsed().Seconds(), "keys/s")
			})
		}
	}
}

// TestMetricsOverheadGate enforces the < 2% observability budget on the E1
// build. Wall-clock comparisons are noisy on shared machines, so the gate
// only runs when explicitly requested (ONLINEINDEX_OVERHEAD_GATE=1, set by
// `scripts/ci.sh overhead`) and compares the minimum of several trials — the
// minimum estimates the undisturbed run, which is what the instrumentation
// delta shifts.
func TestMetricsOverheadGate(t *testing.T) {
	if os.Getenv("ONLINEINDEX_OVERHEAD_GATE") == "" {
		t.Skip("set ONLINEINDEX_OVERHEAD_GATE=1 to run the overhead gate")
	}
	const rows = 100_000
	const trials = 7
	measure := func(method catalog.BuildMethod, disabled bool) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < trials; i++ {
			db := overheadDB(t, rows, disabled)
			start := time.Now()
			if _, err := core.Build(db, buildSpec(method), core.Options{}); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
			db.Close() //nolint:errcheck
		}
		return best
	}
	for _, method := range []catalog.BuildMethod{catalog.MethodNSF, catalog.MethodSF} {
		on := measure(method, false)
		off := measure(method, true)
		overhead := (on - off).Seconds() / off.Seconds() * 100
		t.Logf("%s: instrumented %.1fms, disabled %.1fms, overhead %+.2f%%",
			method, on.Seconds()*1000, off.Seconds()*1000, overhead)
		if overhead > 2.0 {
			t.Errorf("%s: metrics overhead %.2f%% exceeds the 2%% budget", method, overhead)
		}
	}
}
