// Package onlineindex is a Go implementation of the online index build
// algorithms of C. Mohan and I. Narang, "Algorithms for Creating Indexes for
// Very Large Tables Without Quiescing Updates" (SIGMOD 1992): NSF (No
// Side-File) and SF (Side-File) index builds that run concurrently with
// inserts, deletes and updates, plus the offline baseline, restartable
// builds over a restartable external sort, pseudo-deleted key garbage
// collection, and multi-index builds in one table scan.
//
// The package is a facade over a small but complete storage engine built
// for the reproduction: write-ahead logging with ARIES-style restart
// recovery, a buffer pool, latches and a hierarchical lock manager, slotted
// heap tables, and a B+-tree index manager with pseudo-delete support.
//
// Quick start:
//
//	db, _ := onlineindex.Open(onlineindex.Config{})
//	db.CreateTable("orders", onlineindex.Schema{
//		{Name: "id", Kind: onlineindex.KindInt64},
//		{Name: "customer", Kind: onlineindex.KindString},
//	})
//	tx := db.Begin()
//	db.Insert(tx, "orders", onlineindex.Row{onlineindex.Int64(1), onlineindex.String("acme")})
//	tx.Commit()
//
//	// Build an index with the SF algorithm while updates continue:
//	res, _ := db.BuildIndex(onlineindex.IndexSpec{
//		Name: "by_customer", Table: "orders", Columns: []string{"customer"},
//		Method: onlineindex.SF,
//	}, onlineindex.BuildOptions{})
//	_ = res
package onlineindex

import (
	"time"

	"onlineindex/internal/admin"
	"onlineindex/internal/btree"
	"onlineindex/internal/catalog"
	"onlineindex/internal/core"
	"onlineindex/internal/engine"
	"onlineindex/internal/keyenc"
	"onlineindex/internal/metrics"
	"onlineindex/internal/partition"
	"onlineindex/internal/progress"
	"onlineindex/internal/txn"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
)

// BuildMethod selects the index build algorithm.
type BuildMethod = catalog.BuildMethod

// Build methods.
const (
	// Offline quiesces all updates for the duration of the build — the
	// behaviour of the systems the paper improves on.
	Offline = catalog.MethodOffline
	// NSF is the paper's No Side-File algorithm (§2): a short quiesce to
	// create the descriptor, then transactions maintain the index directly
	// while the builder inserts the sorted keys.
	NSF = catalog.MethodNSF
	// SF is the paper's Side-File algorithm (§3): no quiescing at all; the
	// builder loads the tree bottom-up while transactions append their
	// changes to a side-file that is applied at the end.
	SF = catalog.MethodSF
)

// Value kinds for schema columns.
const (
	KindInt64  = keyenc.KindInt64
	KindUint64 = keyenc.KindUint64
	KindString = keyenc.KindString
	KindBytes  = keyenc.KindBytes
)

// Value is one typed column value.
type Value = keyenc.Value

// Row is one table row.
type Row = engine.Row

// Value constructors.
var (
	Int64  = keyenc.Int64
	Uint64 = keyenc.Uint64
	String = keyenc.String
	Bytes  = keyenc.Bytes
	Null   = keyenc.Null
)

// Schema describes a table's columns.
type Schema = catalog.Schema

// Column is one schema column.
type Column = catalog.Column

// RID identifies a stored row.
type RID = types.RID

// Txn is a transaction handle.
type Txn = txn.Txn

// FS is the storage abstraction; MemFS simulates stable storage with crash
// semantics, OSFS stores files in a host directory.
type FS = vfs.FS

// NewMemFS returns an in-memory crash-simulating file system.
func NewMemFS() *vfs.MemFS { return vfs.NewMemFS() }

// NewOSFS returns a host-directory file system.
func NewOSFS(dir string) (*vfs.OSFS, error) { return vfs.NewOSFS(dir) }

// Config tunes a database instance.
type Config struct {
	// FS is the stable storage (nil: a fresh MemFS).
	FS FS
	// PoolSize is the buffer pool capacity in frames (default 1024).
	PoolSize int
	// DisableMetrics turns off the metrics registry and build progress
	// tracking; every instrumentation site degrades to a nil-handle no-op
	// (the configuration the overhead benchmark compares against).
	DisableMetrics bool
	// CommitBatchDelay makes a group-commit flush leader linger this long
	// before issuing the WAL fsync, letting more concurrent committers join
	// the batch. Zero (the default) flushes immediately; commits never wait
	// unless other commits are actually in flight. See README "Tuning commit
	// throughput".
	CommitBatchDelay time.Duration
	// SerialCommitForce disables group commit, restoring the serial Force
	// path that holds the log mutex across the fsync. Benchmarks use it as
	// the baseline; production code should leave it off.
	SerialCommitForce bool
	// BufferShards is the buffer pool's page-table shard count (rounded up
	// to a power of two; 0 means min(16, GOMAXPROCS)). See README "Tuning
	// shard counts".
	BufferShards int
	// LockStripes is the lock manager's bucket-map stripe count (rounded up
	// to a power of two; 0 means min(16, GOMAXPROCS)).
	LockStripes int
	// DisableReadCache turns off the hash point-lookup fast path; Lookup then
	// always descends the B+-tree. See README "Serving reads during a build".
	DisableReadCache bool
	// ReadCacheSize caps the point-lookup cache at this many key runs per
	// index (0 means 4096).
	ReadCacheSize int
	// DisableZoneMap turns off zone-map maintenance and sequential-scan block
	// pruning.
	DisableZoneMap bool
}

// IndexSpec describes an index to build.
type IndexSpec struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
	Method  BuildMethod
}

// BuildOptions tunes a build; see core.Options for the fields and their
// defaults. ScanWorkers sets the number of parallel key-extraction workers
// in the staged scan pipeline (default 1 — serial); SortPartitions fans the
// sort's run generation out across independent sorters (default 1 —
// serial); MergeOverlap pipelines the run merge into the index load
// (default off); CompressKeys prefix-delta encodes spilled sort runs and
// prefix-truncates tree pages (default off — worthwhile for composite keys
// with long shared prefixes; see the README's "Key compression" note). The
// zero value is valid; out-of-range fields make the build fail with
// ErrInvalidBuildOptions.
type BuildOptions = core.Options

// ErrInvalidBuildOptions is wrapped by the error every build entry point
// returns for out-of-range BuildOptions; test with errors.Is.
var ErrInvalidBuildOptions = core.ErrInvalidOptions

// BuildResult reports a completed build.
type BuildResult = core.Result

// BuildStats is the per-build statistics block.
type BuildStats = core.Stats

// IndexInfo is a catalog index descriptor.
type IndexInfo = catalog.Index

// TableInfo is a catalog table descriptor.
type TableInfo = catalog.Table

// UniqueViolationError reports a genuine unique-key violation (during DML or
// a unique index build).
type UniqueViolationError = engine.UniqueViolationError

// GCResult summarizes a pseudo-deleted key cleanup pass.
type GCResult = btree.GCResult

// DB is a database handle. All DML and read methods route through the
// partition router: on plain tables the router is a pass-through; on
// partitioned logical tables it picks the shard(s).
type DB struct {
	eng *engine.DB
	rt  *partition.Router
}

func (cfg Config) engineConfig() engine.Config {
	return engine.Config{
		FS: cfg.FS, PoolSize: cfg.PoolSize, DisableMetrics: cfg.DisableMetrics,
		CommitBatchDelay: cfg.CommitBatchDelay, SerialCommitForce: cfg.SerialCommitForce,
		BufferShards: cfg.BufferShards, LockStripes: cfg.LockStripes,
		DisableReadCache: cfg.DisableReadCache, ReadCacheSize: cfg.ReadCacheSize,
		DisableZoneMap: cfg.DisableZoneMap,
	}
}

// Open creates a fresh database.
func Open(cfg Config) (*DB, error) {
	eng, err := engine.Open(cfg.engineConfig())
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng, rt: partition.NewRouter(eng)}, nil
}

// Recover reopens a database from the durable state on fs, running restart
// recovery (analysis, redo, undo). Interrupted online index builds are
// resumed from their last checkpoints before Recover returns.
func Recover(cfg Config) (*DB, error) {
	eng, err := engine.Recover(cfg.engineConfig())
	if err != nil {
		return nil, err
	}
	db := &DB{eng: eng, rt: partition.NewRouter(eng)}
	if _, err := core.ResumeAll(eng, core.Options{}); err != nil {
		return nil, err
	}
	// Fan-out builds interrupted mid-coordination: rebuild missing shards,
	// re-run the unique completion sweep, commit the logical index.
	if err := partition.FinishPending(eng, partition.BuildOptions{}); err != nil {
		return nil, err
	}
	if err := partition.RefreshStats(eng); err != nil {
		return nil, err
	}
	return db, nil
}

// RecoverWithoutResume runs restart recovery but leaves interrupted builds
// pending; PendingBuilds/ResumeBuild give the caller control over when the
// builders run (the crash/restart examples and experiments use this).
func RecoverWithoutResume(cfg Config) (*DB, error) {
	eng, err := engine.Recover(cfg.engineConfig())
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng, rt: partition.NewRouter(eng)}, nil
}

// Engine exposes the underlying engine for advanced use (experiment
// harnesses, statistics).
func (db *DB) Engine() *engine.DB { return db.eng }

// CreateTable creates a table.
func (db *DB) CreateTable(name string, schema Schema) (TableInfo, error) {
	return db.eng.CreateTable(name, schema)
}

// Partitioning schemes for CreatePartitionedTable.
const (
	// RangePartition routes rows by comparing the partitioning column
	// against the spec's upper-exclusive bounds; range scans led by the
	// partitioning column stay partition-ordered (no merge needed).
	RangePartition = catalog.SchemeRange
	// HashPartition routes rows by a hash of the partitioning column;
	// spreads any key distribution evenly, but range scans fan out.
	HashPartition = catalog.SchemeHash
)

// PartitionSpec describes how to split a logical table into shards.
type PartitionSpec = partition.Spec

// PartitionInfo is a logical partitioned table's descriptor.
type PartitionInfo = catalog.PartTable

// CreatePartitionedTable creates one logical table backed by
// spec.Partitions independent shard tables (each with its own heap file,
// free-space map, zone map, and index trees). All DML and read methods
// accept the logical name and route automatically; BuildIndex on the
// logical table fans out one build per shard under a global coordinator.
// See README "Partitioning a table".
func (db *DB) CreatePartitionedTable(name string, schema Schema, spec PartitionSpec) (PartitionInfo, error) {
	return partition.CreateTable(db.eng, name, schema, spec)
}

// PartitionedTable returns a logical partitioned table's descriptor.
func (db *DB) PartitionedTable(name string) (PartitionInfo, bool) {
	return db.eng.Catalog().PartTable(name)
}

// Begin starts a transaction.
func (db *DB) Begin() *Txn { return db.eng.Begin() }

// Insert inserts a row, maintaining every visible index.
func (db *DB) Insert(tx *Txn, table string, row Row) (RID, error) {
	return db.rt.Insert(tx, table, row)
}

// Delete deletes a row by RID.
func (db *DB) Delete(tx *Txn, table string, rid RID) error {
	return db.rt.Delete(tx, table, rid)
}

// Update replaces a row in place when possible, relocating it otherwise;
// the returned RID is the row's (possibly new) identity.
func (db *DB) Update(tx *Txn, table string, rid RID, row Row) (RID, error) {
	return db.rt.Update(tx, table, rid, row)
}

// Get reads a row by RID under a share lock.
func (db *DB) Get(tx *Txn, table string, rid RID) (Row, bool, error) {
	return db.rt.Get(tx, table, rid)
}

// BuildIndex builds an index with the chosen algorithm, blocking until it
// completes. For the online methods (NSF, SF) other goroutines can keep
// updating the table throughout. On a partitioned logical table the build
// fans out one per-shard builder per partition (concurrently) under a
// coordinator that commits the logical index only when every shard
// completes; the returned result then carries a synthesized logical
// descriptor and the per-shard stats summed.
func (db *DB) BuildIndex(spec IndexSpec, opts BuildOptions) (*BuildResult, error) {
	espec := engine.CreateIndexSpec{
		Name: spec.Name, Table: spec.Table, Columns: spec.Columns,
		Unique: spec.Unique, Method: spec.Method,
	}
	if _, ok := db.eng.Catalog().PartTable(spec.Table); ok {
		pres, err := partition.Build(db.eng, espec, partition.BuildOptions{Options: opts})
		if err != nil {
			return nil, err
		}
		return &BuildResult{
			Index: catalog.Index{
				Name: spec.Name, Unique: spec.Unique,
				Method: spec.Method, State: catalog.StateComplete,
			},
			Stats: pres.Stats,
		}, nil
	}
	return core.Build(db.eng, espec, opts)
}

// BuildIndexes builds several indexes on one table in a single data scan
// (§6.2 of the paper).
func (db *DB) BuildIndexes(specs []IndexSpec, opts BuildOptions) ([]*BuildResult, error) {
	out := make([]engine.CreateIndexSpec, len(specs))
	for i, s := range specs {
		out[i] = engine.CreateIndexSpec{
			Name: s.Name, Table: s.Table, Columns: s.Columns,
			Unique: s.Unique, Method: s.Method,
		}
	}
	return core.BuildMany(db.eng, out, opts)
}

// CancelBuild aborts an in-progress index build (quiescing the table briefly
// to delete the descriptor, as §2.3.2 requires).
func (db *DB) CancelBuild(index string) error { return core.Cancel(db.eng, index) }

// DropIndex removes a complete index (for a partitioned logical index,
// every shard index plus the logical descriptor).
func (db *DB) DropIndex(index string) error {
	if _, ok := db.eng.Catalog().PartIndex(index); ok {
		return partition.Drop(db.eng, index)
	}
	return db.eng.DropIndex(index)
}

// GC garbage-collects the pseudo-deleted keys of an index (§2.2.4), using
// the Commit_LSN check and conditional instant locks to skip uncommitted
// deletions.
func (db *DB) GC(index string) (GCResult, error) { return core.GC(db.eng, index) }

// IndexLookup returns the RIDs matching a key in a complete index. With a
// transaction it is a committed read: an S record lock is held on each
// returned RID, and a hash fast path over the B+-tree serves repeated
// lookups without a tree descent (see README "Serving reads during a
// build"). A nil tx reads without locks (quiescent-point use only).
func (db *DB) IndexLookup(tx *Txn, index string, vals ...Value) ([]RID, error) {
	return db.rt.Lookup(tx, index, vals...)
}

// Lookup is IndexLookup under its natural name.
func (db *DB) Lookup(tx *Txn, index string, vals ...Value) ([]RID, error) {
	return db.rt.Lookup(tx, index, vals...)
}

// IndexScan streams a complete index's live entries in key order (nil
// bounds are open). With a transaction the scan is latch-coupled and
// batched — concurrent splits, DML and GC proceed between batches — and
// every returned entry is verified under an S record lock. A nil tx reads
// without locks.
func (db *DB) IndexScan(tx *Txn, index string, lo, hi []Value, fn func(key []byte, rid RID) bool) error {
	return db.rt.Scan(tx, index, lo, hi, fn)
}

// Scan is IndexScan under its natural name.
func (db *DB) Scan(tx *Txn, index string, lo, hi []Value, fn func(key []byte, rid RID) bool) error {
	return db.rt.Scan(tx, index, lo, hi, fn)
}

// Predicate restricts a SeqScan to rows whose column Col lies in [Lo, Hi]
// (nil bounds are open).
type Predicate = engine.Predicate

// SeqScan streams a table's rows matching pred in RID order, skipping page
// blocks whose zone-map summary excludes the predicate range. With a
// transaction each returned row is locked and re-verified; a nil tx reads
// without locks.
func (db *DB) SeqScan(tx *Txn, table string, pred *Predicate, fn func(rid RID, row Row) bool) error {
	return db.rt.SeqScan(tx, table, pred, fn)
}

// TableScan streams every live row in RID order.
func (db *DB) TableScan(table string, fn func(rid RID, row Row) error) error {
	return db.rt.TableScan(table, fn)
}

// CheckIndexConsistency verifies an index exactly reflects its table.
func (db *DB) CheckIndexConsistency(index string) error {
	return db.rt.CheckIndexConsistency(index)
}

// Index returns an index descriptor.
func (db *DB) Index(name string) (IndexInfo, bool) { return db.eng.Catalog().Index(name) }

// Checkpoint takes a fuzzy checkpoint (bounding restart recovery work).
func (db *DB) Checkpoint() error { return db.eng.Checkpoint() }

// Crash simulates a system failure: every volatile structure is dropped,
// in-flight transactions are lost, and only forced state survives on the
// returned FS. Recover(Config{FS: fs}) brings the database back.
func (db *DB) Crash() FS { return db.eng.Crash() }

// Close flushes everything and shuts down cleanly.
func (db *DB) Close() error { return db.eng.Close() }

// MetricsSnapshot is a point-in-time copy of every engine instrument.
type MetricsSnapshot = metrics.Snapshot

// ProgressSnapshot is a point-in-time view of one build's progress and ETA.
type ProgressSnapshot = progress.Snapshot

// Metrics returns a snapshot of the engine's metrics registry (empty when
// Config.DisableMetrics was set).
func (db *DB) Metrics() MetricsSnapshot { return db.eng.Metrics().Snapshot() }

// BuildProgress returns a progress snapshot for every build the engine has
// tracked, running or complete (empty when metrics are disabled).
func (db *DB) BuildProgress() []ProgressSnapshot { return db.eng.ProgressSnapshots() }

// AdminServer is a running admin HTTP endpoint (see ServeAdmin).
type AdminServer = admin.Server

// ServeAdmin starts the read-only admin endpoint on addr ("127.0.0.1:0"
// picks a free port; the server's URL method reports it). It serves JSON
// snapshots of the metrics registry and every build's progress:
//
//	GET /          combined view with the side-file backlog
//	GET /metrics   the metrics snapshot
//	GET /progress  the build progress list
//
// Close the returned server when done.
func (db *DB) ServeAdmin(addr string) (*AdminServer, error) {
	return admin.Serve(addr, db.eng)
}

// PendingBuilds lists index builds interrupted by a crash (after
// RecoverWithoutResume).
func (db *DB) PendingBuilds() ([]engine.PendingBuild, error) { return db.eng.PendingBuilds() }

// ResumeBuild resumes one interrupted build.
func (db *DB) ResumeBuild(pb engine.PendingBuild, opts BuildOptions) (*BuildResult, error) {
	return core.Resume(db.eng, pb, opts)
}
