package onlineindex_test

import (
	"os"
	"runtime"
	"testing"
	"time"

	"onlineindex/internal/experiments"
)

// TestPartitionBuildGate enforces the fan-out coordinator's win: a parallel
// 4-shard SF build of the same logical index over the same rows must be at
// least 1.25x faster than the single-shard build. The per-shard builders
// are the unchanged serial pipeline, so any speedup comes purely from the
// coordinator overlapping independent shard scans and loads — and with the
// buffer pool sharded, the lock manager striped, and WAL reservation
// lock-free (PR 6), the shards have genuinely independent hot paths to
// contend on. Wall-clock measurements are noisy on shared machines, so the
// gate only runs when explicitly requested (ONLINEINDEX_PART_GATE=1, set by
// `scripts/ci.sh bench-part`) and takes the best of several trials,
// interleaved so both partition counts see the same machine drift.
func TestPartitionBuildGate(t *testing.T) {
	if os.Getenv("ONLINEINDEX_PART_GATE") == "" {
		t.Skip("set ONLINEINDEX_PART_GATE=1 to run the partitioned-build gate")
	}
	// Four concurrent shard builders on one core just timeslice; the
	// overlap being measured needs real parallelism. CI's nightly runners
	// have >= 4.
	if runtime.NumCPU() < 4 {
		t.Skipf("partitioned-build gate needs >= 4 CPUs, have %d", runtime.NumCPU())
	}
	const (
		rows    = 20000
		trials  = 5
		readers = 1
		dur     = 50 * time.Millisecond
	)
	cfg := experiments.Config{Scale: 1}
	var serial, fanout float64
	for i := 0; i < trials; i++ {
		c1, err := experiments.PartTrial(cfg, "hash", rows, 1, readers, dur)
		if err != nil {
			t.Fatal(err)
		}
		if serial == 0 || c1.BuildMS < serial {
			serial = c1.BuildMS
		}
		c4, err := experiments.PartTrial(cfg, "hash", rows, 4, readers, dur)
		if err != nil {
			t.Fatal(err)
		}
		if fanout == 0 || c4.BuildMS < fanout {
			fanout = c4.BuildMS
		}
	}
	speedup := serial / fanout
	t.Logf("SF build of %d rows: 1 shard %.1fms, 4-shard fan-out %.1fms, speedup %.2fx",
		rows, serial, fanout, speedup)
	if speedup < 1.25 {
		t.Errorf("fan-out build speedup %.2fx below the 1.25x gate", speedup)
	}
}
